//! Platform assembly: replicated controllers, workers, the coordination
//! service, and the client API (paper Figure 1).
//!
//! [`Tropic::start`] brings up the whole stack in-process: a coordination
//! ensemble, `controllers` controller threads contending for leadership,
//! and `workers` physical workers. Clients submit stored-procedure calls
//! and wait for transactional outcomes; operators can crash and restart
//! controllers, signal transactions, and run reconciliation.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use tropic_coord::{CoordClient, CoordService, DistributedQueue, LeaderElection, Op};
use tropic_model::{real_clock, Path, SharedClock, Value};

use crate::api::{AdminClient, ApiError, Priority, Subscription, TxnHandle, TxnRequest};
use crate::config::{PlatformConfig, RpcConfig, ServiceDefinition};
use crate::controller::{Controller, ControllerConfig};
use crate::error::PlatformError;
use crate::msg::{decode_input, encode_input, layout, AdminResult, InputMsg, Signal};
use crate::physical::ExecMode;
use crate::stats::Metrics;
use crate::twin::{TwinFeed, TwinSubscription};
use crate::txn::{TxnId, TxnOutcome, TxnRecord};
use crate::worker::{run_worker_with, WorkerOptions};
use tropic_devices::{report_channel, DeviceRegistry, ReportLedger};

struct ControllerHandle {
    name: String,
    crash: Arc<AtomicBool>,
    is_leader: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

struct WorkerHandle {
    thread: Option<JoinHandle<()>>,
}

/// A running TROPIC platform.
pub struct Tropic {
    coord: Arc<CoordService>,
    clock: SharedClock,
    metrics: Metrics,
    mode: ExecMode,
    next_txn_id: Arc<AtomicU64>,
    next_admin_id: Arc<AtomicU64>,
    rpc_cfg: RpcConfig,
    twin_feed: TwinFeed,
    controllers: Vec<ControllerHandle>,
    workers: Vec<WorkerHandle>,
    reporter: Option<JoinHandle<()>>,
    stop: Arc<AtomicBool>,
}

/// The shared handles every client-producing surface needs. The RPC
/// frontend clones one per connection so each remote session gets the same
/// construction path (own coordination session, shared id counters) as a
/// linked-in client.
#[derive(Clone)]
pub(crate) struct PlatformShared {
    pub(crate) coord: Arc<CoordService>,
    pub(crate) clock: SharedClock,
    pub(crate) metrics: Metrics,
    pub(crate) next_txn_id: Arc<AtomicU64>,
    pub(crate) next_admin_id: Arc<AtomicU64>,
    pub(crate) twin_feed: TwinFeed,
}

impl PlatformShared {
    /// Opens a client handle on a fresh coordination session named `name`.
    pub(crate) fn client(&self, name: &str) -> TropicClient {
        let client = self.coord.connect(name);
        let keepalive = client.keepalive();
        TropicClient {
            coord: Arc::clone(&self.coord),
            client,
            _keepalive: keepalive,
            next_txn_id: Arc::clone(&self.next_txn_id),
            clock: Arc::clone(&self.clock),
        }
    }

    /// Opens the operator plane on a fresh coordination session.
    pub(crate) fn admin(&self, name: &str) -> AdminClient {
        AdminClient::new(
            self.coord.connect(name),
            Arc::clone(&self.next_admin_id),
            Arc::clone(&self.clock),
        )
    }

    /// Starts a lifecycle-event subscription on a dedicated session.
    pub(crate) fn subscription(&self) -> Subscription {
        Subscription::start(Arc::clone(&self.coord), Arc::clone(&self.clock))
    }
}

impl Tropic {
    /// Starts the platform on the real clock. With
    /// `config.coord.data_dir` set, the coordination store is durable and
    /// the directory is **formatted** for a fresh deployment — use
    /// [`Tropic::recover`] to resume an existing one.
    pub fn start(config: PlatformConfig, service: ServiceDefinition, mode: ExecMode) -> Self {
        Self::start_with_clock(config, service, mode, real_clock())
    }

    /// Recovers a durable platform from `config.coord.data_dir` after a
    /// full shutdown or crash ("power loss"): the coordination store is
    /// rebuilt from each replica's snapshot plus write-ahead-log suffix,
    /// the elected controller resumes from the reconstructed checkpoint,
    /// transaction records, `inputQ`, and `phyQ`, and workers pick the
    /// surviving physical tasks back up — no acknowledged transaction is
    /// lost and in-flight ones run to completion.
    pub fn recover(config: PlatformConfig, service: ServiceDefinition, mode: ExecMode) -> Self {
        Self::recover_with_clock(config, service, mode, real_clock())
    }

    /// Starts the platform reading time from `clock`.
    pub fn start_with_clock(
        config: PlatformConfig,
        service: ServiceDefinition,
        mode: ExecMode,
        clock: SharedClock,
    ) -> Self {
        Self::boot(config, service, mode, clock, false)
    }

    /// [`Tropic::recover`] with an explicit clock.
    pub fn recover_with_clock(
        config: PlatformConfig,
        service: ServiceDefinition,
        mode: ExecMode,
        clock: SharedClock,
    ) -> Self {
        Self::boot(config, service, mode, clock, true)
    }

    fn boot(
        config: PlatformConfig,
        service: ServiceDefinition,
        mode: ExecMode,
        clock: SharedClock,
        recover: bool,
    ) -> Self {
        service
            .schemas
            .validate(&service.initial_tree)
            .expect("initial tree must satisfy the service schemas");
        let coord = Arc::new(if recover {
            CoordService::recover_with_clock(config.coord.clone(), Arc::clone(&clock))
        } else {
            CoordService::start_with_clock(config.coord.clone(), Arc::clone(&clock))
        });
        // New submissions must never collide with transaction or admin ids
        // already persisted before the restart (a duplicate id would
        // silently alias the old record's outcome).
        let (first_txn_id, first_admin_id) = if recover {
            next_free_ids(&coord)
        } else {
            (1, 1)
        };
        let service = Arc::new(service);
        let metrics = Metrics::new();
        let stop = Arc::new(AtomicBool::new(false));
        let twin_feed = TwinFeed::new();

        let mut controllers = Vec::new();
        for i in 0..config.controllers.max(1) {
            let name = format!("controller-{i}");
            let crash = Arc::new(AtomicBool::new(false));
            let is_leader = Arc::new(AtomicBool::new(false));
            let thread = {
                let coord = Arc::clone(&coord);
                let service = Arc::clone(&service);
                let mode = mode.clone();
                let clock = Arc::clone(&clock);
                let metrics = metrics.clone();
                let stop = Arc::clone(&stop);
                let crash = Arc::clone(&crash);
                let is_leader = Arc::clone(&is_leader);
                let cfg = ControllerConfig {
                    name: name.clone(),
                    checkpoint_every: config.checkpoint_every,
                    gc_grace_ms: config.gc_grace_ms,
                    term_timeout_ms: config.term_timeout_ms,
                    kill_timeout_ms: config.kill_timeout_ms,
                    poll_ms: config.poll_ms,
                    group_commit: config.group_commit,
                    input_batch: config.input_batch,
                    twin: config.twin.clone(),
                    twin_feed: twin_feed.clone(),
                };
                std::thread::Builder::new()
                    .name(name.clone())
                    .spawn(move || {
                        controller_thread(
                            cfg, coord, service, mode, clock, metrics, stop, crash, is_leader,
                        )
                    })
                    .expect("spawn controller thread")
            };
            controllers.push(ControllerHandle {
                name,
                crash,
                is_leader,
                thread: Some(thread),
            });
        }

        let mut workers = Vec::new();
        for i in 0..config.workers.max(1) {
            let name = format!("worker-{i}");
            let coord = Arc::clone(&coord);
            let mode = mode.clone();
            let stop = Arc::clone(&stop);
            let opts = WorkerOptions {
                group_commit: config.group_commit,
                ..WorkerOptions::default()
            };
            let thread = std::thread::Builder::new()
                .name(name.clone())
                .spawn(move || run_worker_with(&name, &coord, mode, &stop, opts))
                .expect("spawn worker thread");
            workers.push(WorkerHandle {
                thread: Some(thread),
            });
        }

        // The report pump is platform-level, not controller-level: device
        // reports keep flowing across controller failover, and the new
        // leader resumes reconciliation from the persisted twin subtree.
        let reporter = match (config.twin.enabled, mode.registry()) {
            (true, Some(registry)) => {
                let coord = Arc::clone(&coord);
                let registry = Arc::clone(registry);
                let clock = Arc::clone(&clock);
                let stop = Arc::clone(&stop);
                let interval_ms = config.twin.report_interval_ms.max(1);
                Some(
                    std::thread::Builder::new()
                        .name("twin-reporter".into())
                        .spawn(move || reporter_thread(coord, registry, clock, interval_ms, stop))
                        .expect("spawn twin reporter thread"),
                )
            }
            _ => None,
        };

        Tropic {
            coord,
            clock,
            metrics,
            mode,
            next_txn_id: Arc::new(AtomicU64::new(first_txn_id)),
            next_admin_id: Arc::new(AtomicU64::new(first_admin_id)),
            rpc_cfg: config.rpc,
            twin_feed,
            controllers,
            workers,
            reporter,
            stop,
        }
    }

    pub(crate) fn shared(&self) -> PlatformShared {
        PlatformShared {
            coord: Arc::clone(&self.coord),
            clock: Arc::clone(&self.clock),
            metrics: self.metrics.clone(),
            next_txn_id: Arc::clone(&self.next_txn_id),
            next_admin_id: Arc::clone(&self.next_admin_id),
            twin_feed: self.twin_feed.clone(),
        }
    }

    /// The platform-wide twin event hub (digital-twin phase transitions).
    pub fn twin_feed(&self) -> TwinFeed {
        self.twin_feed.clone()
    }

    /// Subscribes to twin phase-transition events in-process.
    pub fn subscribe_twin(&self) -> TwinSubscription {
        self.twin_feed.subscribe()
    }

    /// Opens a client handle for submitting transactions.
    pub fn client(&self) -> TropicClient {
        self.shared().client("tropic-client")
    }

    /// Opens the operator plane: `repair`, `reload`, and transaction
    /// signals, on a dedicated coordination session.
    pub fn admin(&self) -> AdminClient {
        self.shared().admin("tropic-admin")
    }

    /// Starts the network RPC frontend on `config.rpc` (see
    /// [`crate::rpc`]): out-of-process clients get the same typed
    /// `TxnRequest`/handle surface over a socket. Stop the returned server
    /// **before** calling [`Tropic::shutdown`].
    pub fn serve_rpc(&self) -> Result<crate::rpc::RpcServer, ApiError> {
        crate::rpc::RpcServer::start(self.shared(), self.rpc_cfg.clone())
    }

    /// The shared metrics collector.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Aggregate fault-injection counters across every registered device
    /// (zero in [`ExecMode::LogicalOnly`]).
    pub fn fault_stats(&self) -> tropic_devices::FaultStats {
        self.mode
            .registry()
            .map(|r| r.fault_stats())
            .unwrap_or_default()
    }

    /// Platform-level counter snapshot: the metrics counters plus the
    /// device registry's fault-injection totals. Operators and the chaos
    /// harness read this instead of [`Metrics::counters`] so aborts can be
    /// attributed to injected faults vs real bugs.
    pub fn counters(&self) -> crate::stats::Counters {
        let mut counters = self.metrics.counters();
        let faults = self.fault_stats();
        counters.faults_passed = faults.passed;
        counters.faults_injected = faults.injected;
        counters
    }

    /// The underlying coordination service (fault injection in tests).
    pub fn coord(&self) -> &CoordService {
        &self.coord
    }

    /// The platform clock.
    pub fn clock(&self) -> &SharedClock {
        &self.clock
    }

    /// Index of the controller currently holding leadership, if any.
    pub fn leader_index(&self) -> Option<usize> {
        self.controllers
            .iter()
            .position(|c| c.is_leader.load(Ordering::SeqCst))
    }

    /// Name of controller `idx`.
    pub fn controller_name(&self, idx: usize) -> Option<&str> {
        self.controllers.get(idx).map(|c| c.name.as_str())
    }

    /// Simulates a crash of controller `idx`: its thread stops doing any
    /// work (including session heartbeats), so its ephemeral election node
    /// expires after the session timeout and a follower takes over — the
    /// paper's §6.4 failure model. Returns `false` for unknown indices.
    pub fn crash_controller(&self, idx: usize) -> bool {
        let Some(c) = self.controllers.get(idx) else {
            return false;
        };
        c.crash.store(true, Ordering::SeqCst);
        self.metrics
            .record_event(self.clock.now_ms(), &c.name, "crashed");
        true
    }

    /// Crashes the current leader, returning its index.
    pub fn crash_leader(&self) -> Option<usize> {
        let idx = self.leader_index()?;
        self.crash_controller(idx);
        Some(idx)
    }

    /// Restarts a crashed controller: it reconnects with a fresh session and
    /// rejoins the election as a follower.
    pub fn restart_controller(&self, idx: usize) -> bool {
        let Some(c) = self.controllers.get(idx) else {
            return false;
        };
        c.crash.store(false, Ordering::SeqCst);
        self.metrics
            .record_event(self.clock.now_ms(), &c.name, "restarted");
        true
    }

    /// Sends a TERM or KILL signal to a transaction (paper §4).
    #[deprecated(
        since = "0.2.0",
        note = "use `Tropic::admin()` and `AdminClient::signal`"
    )]
    pub fn signal(&self, id: TxnId, signal: Signal) -> Result<(), PlatformError> {
        self.admin().signal(id, signal).map_err(PlatformError::from)
    }

    /// Runs `repair` over `scope` (paper §4), blocking up to `timeout`.
    #[deprecated(
        since = "0.2.0",
        note = "use `Tropic::admin()` and `AdminClient::repair`"
    )]
    pub fn repair(&self, scope: &Path, timeout: Duration) -> Result<AdminResult, PlatformError> {
        self.admin()
            .repair(scope, timeout)
            .map_err(PlatformError::from)
    }

    /// Runs `reload` over `scope` (paper §4), blocking up to `timeout`.
    #[deprecated(
        since = "0.2.0",
        note = "use `Tropic::admin()` and `AdminClient::reload`"
    )]
    pub fn reload(&self, scope: &Path, timeout: Duration) -> Result<AdminResult, PlatformError> {
        self.admin()
            .reload(scope, timeout)
            .map_err(PlatformError::from)
    }

    /// Stops every component and joins their threads.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        for c in &mut self.controllers {
            if let Some(t) = c.thread.take() {
                let _ = t.join();
            }
        }
        for w in &mut self.workers {
            if let Some(t) = w.thread.take() {
                let _ = t.join();
            }
        }
        if let Some(t) = self.reporter.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Tropic {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// A client handle for submitting transactions and awaiting outcomes.
///
/// The typed surface is [`TropicClient::submit_request`] (builder in,
/// [`TxnHandle`] out), [`TropicClient::submit_batch`] (atomic multi-request
/// enqueue), and [`TropicClient::subscribe`] (streaming lifecycle events).
/// The stringly-typed `submit`/`wait` methods remain as deprecated shims.
///
/// The handle heartbeats its coordination session in the background (as a
/// real ZooKeeper client would), so it survives arbitrary idle periods.
pub struct TropicClient {
    coord: Arc<CoordService>,
    client: CoordClient,
    _keepalive: tropic_coord::KeepAlive,
    next_txn_id: Arc<AtomicU64>,
    clock: SharedClock,
}

impl TropicClient {
    /// Submits a typed request (paper Figure 2, step 1): the request is
    /// enveloped in the versioned wire format and enqueued on its
    /// priority's input lane. Returns a [`TxnHandle`] immediately.
    pub fn submit_request(&self, request: TxnRequest) -> Result<TxnHandle<'_>, ApiError> {
        let id = self.next_txn_id.fetch_add(1, Ordering::SeqCst);
        let priority = request.priority_lane();
        let (msg, deadline_ms) = request.into_msg(id, self.clock.now_ms())?;
        let q = DistributedQueue::new(&self.client, layout::input_lane(priority))?;
        q.enqueue(encode_input(msg))?;
        Ok(TxnHandle::new(
            &self.client,
            Arc::clone(&self.clock),
            id,
            deadline_ms,
        ))
    }

    /// Submits several requests as **one atomic enqueue**: a single
    /// coordination-store multi lands every submission (each on its own
    /// priority lane) or none of them. Returns one handle per request, in
    /// order.
    pub fn submit_batch(&self, requests: Vec<TxnRequest>) -> Result<Vec<TxnHandle<'_>>, ApiError> {
        if requests.is_empty() {
            return Ok(Vec::new());
        }
        let now = self.clock.now_ms();
        let mut ops: Vec<Op> = Vec::with_capacity(requests.len());
        let mut handles: Vec<(TxnId, Option<u64>)> = Vec::with_capacity(requests.len());
        for request in requests {
            let id = self.next_txn_id.fetch_add(1, Ordering::SeqCst);
            let priority = request.priority_lane();
            // Binding the lane queue also creates its base znode, so the
            // batched sequential creates below cannot dangle.
            let q = DistributedQueue::new(&self.client, layout::input_lane(priority))?;
            let (msg, deadline_ms) = request.into_msg(id, now)?;
            ops.push(q.enqueue_op(encode_input(msg)));
            handles.push((id, deadline_ms));
        }
        self.client.multi(ops)?;
        Ok(handles
            .into_iter()
            .map(|(id, deadline_ms)| {
                TxnHandle::new(&self.client, Arc::clone(&self.clock), id, deadline_ms)
            })
            .collect())
    }

    /// Opens a streaming subscription to transaction lifecycle events, on
    /// its own coordination session.
    pub fn subscribe(&self) -> Subscription {
        Subscription::start(Arc::clone(&self.coord), Arc::clone(&self.clock))
    }

    /// Re-attaches a handle to an already-submitted transaction id — e.g.
    /// one submitted before a crash and resumed by [`Tropic::recover`], or
    /// an id shared across processes.
    pub fn handle(&self, id: TxnId) -> TxnHandle<'_> {
        TxnHandle::new(&self.client, Arc::clone(&self.clock), id, None)
    }

    /// Submits a stored-procedure call as a transaction. Returns the
    /// transaction id immediately.
    #[deprecated(since = "0.2.0", note = "use `submit_request` with a `TxnRequest`")]
    pub fn submit(&self, proc_name: &str, args: Vec<Value>) -> Result<TxnId, PlatformError> {
        let handle = self
            .submit_request(TxnRequest::new(proc_name).args(args))
            .map_err(PlatformError::from)?;
        Ok(handle.id())
    }

    /// Waits for a transaction to reach a terminal state.
    #[deprecated(
        since = "0.2.0",
        note = "use the `TxnHandle` returned by `submit_request`"
    )]
    pub fn wait(&self, id: TxnId, timeout: Duration) -> Result<TxnOutcome, PlatformError> {
        TxnHandle::new(&self.client, Arc::clone(&self.clock), id, None)
            .wait_timeout(timeout)
            .map_err(PlatformError::from)
    }

    /// Submits and waits in one call.
    #[deprecated(since = "0.2.0", note = "use `submit_request` and `TxnHandle::wait`")]
    pub fn submit_and_wait(
        &self,
        proc_name: &str,
        args: Vec<Value>,
        timeout: Duration,
    ) -> Result<TxnOutcome, PlatformError> {
        self.submit_request(TxnRequest::new(proc_name).args(args))
            .map_err(PlatformError::from)?
            .wait_timeout(timeout)
            .map_err(PlatformError::from)
    }

    /// Reads the full durable record of a transaction, if still retained.
    pub fn txn_record(&self, id: TxnId) -> Result<Option<TxnRecord>, PlatformError> {
        Ok(self.client.get_json(&layout::txn(id))?)
    }

    /// Keeps the client session alive during long waits driven externally.
    pub fn ping(&self) -> Result<(), PlatformError> {
        self.client.ping()?;
        Ok(())
    }

    /// The platform clock (for computing absolute deadlines).
    pub fn clock(&self) -> &SharedClock {
        &self.clock
    }
}

/// First client-assignable transaction and admin ids after a recovery: one
/// past every id visible in the persisted records, still-queued
/// submissions, and surviving admin-result znodes (internal-namespace txn
/// ids are controller-owned and excluded; reusing an id would alias a
/// pre-crash outcome).
fn next_free_ids(coord: &CoordService) -> (u64, u64) {
    let client = coord.connect("tropic-recovery-scan");
    let mut max_txn_id = 0u64;
    if let Ok(children) = client.get_children(&layout::txns()) {
        for name in children {
            if let Ok(id) = name.parse::<u64>() {
                if id < crate::controller::ADMIN_TXN_BASE {
                    max_txn_id = max_txn_id.max(id);
                }
            }
        }
    }
    let mut max_admin_id = 0u64;
    if let Ok(children) = client.get_children(&layout::admins()) {
        for name in children {
            if let Ok(id) = name.parse::<u64>() {
                max_admin_id = max_admin_id.max(id);
            }
        }
    }
    let mut bases: Vec<Path> = Priority::ALL
        .iter()
        .map(|p| layout::input_lane(*p))
        .collect();
    bases.push(layout::input_q());
    for base in bases {
        let Ok(q) = DistributedQueue::new(&client, base) else {
            continue;
        };
        if let Ok(names) = q.item_names() {
            for name in names {
                if let Ok(Some(data)) = q.get(&name) {
                    match decode_input(&data) {
                        Ok(InputMsg::Submit { id, .. })
                            if id < crate::controller::ADMIN_TXN_BASE =>
                        {
                            max_txn_id = max_txn_id.max(id);
                        }
                        // Still-queued admin ops will write their result
                        // znode after recovery; their ids are taken too.
                        Ok(InputMsg::Repair { admin_id, .. })
                        | Ok(InputMsg::Reload { admin_id, .. }) => {
                            max_admin_id = max_admin_id.max(admin_id);
                        }
                        _ => {}
                    }
                }
            }
        }
    }
    client.close();
    (max_txn_id + 1, max_admin_id + 1)
}

/// The device-report pump (digital twin ingestion): periodically asks the
/// registry to export every device's state, persists the reports that
/// changed under the `twin/` subtree, and bumps the twin epoch counter.
/// Platform-level so reports keep flowing across controller failover; the
/// epoch znode has a single writer, so the blind read-modify-write is safe.
fn reporter_thread(
    coord: Arc<CoordService>,
    registry: Arc<DeviceRegistry>,
    clock: SharedClock,
    interval_ms: u64,
    stop: Arc<AtomicBool>,
) {
    let ledger = ReportLedger::new();
    let (tx, rx) = report_channel();
    while !stop.load(Ordering::SeqCst) {
        let client = coord.connect("twin-reporter");
        let keepalive = client.keepalive();
        if client.create_all(&layout::twin_reported()).is_err() {
            drop(keepalive);
            std::thread::sleep(Duration::from_millis(interval_ms));
            continue;
        }
        let mut epoch: u64 = client
            .get_json(&layout::twin_epoch())
            .ok()
            .flatten()
            .unwrap_or(0);
        let mut session_ok = true;
        while session_ok && !stop.load(Ordering::SeqCst) {
            let now = clock.now_ms();
            if registry.publish_reports(&ledger, &tx, now) > 0 {
                let mut wrote = false;
                for report in rx.drain() {
                    match client.put_json(&layout::twin_reported_item(&report.mount), &report) {
                        Ok(()) => wrote = true,
                        Err(_) => {
                            // Un-advance the ledger so the report republishes
                            // once the session is healthy again.
                            ledger.forget(&report.mount);
                            session_ok = false;
                        }
                    }
                }
                if wrote {
                    epoch += 1;
                    if client.put_json(&layout::twin_epoch(), &epoch).is_err() {
                        session_ok = false;
                    }
                }
            }
            std::thread::sleep(Duration::from_millis(interval_ms));
        }
        drop(keepalive);
        client.close();
    }
}

/// The controller thread body: connect → elect → recover → lead, forever,
/// honouring crash/restart flags (paper §2.3's follower-takeover protocol).
#[allow(clippy::too_many_arguments)]
fn controller_thread(
    cfg: ControllerConfig,
    coord: Arc<CoordService>,
    service: Arc<ServiceDefinition>,
    mode: ExecMode,
    clock: SharedClock,
    metrics: Metrics,
    stop: Arc<AtomicBool>,
    crash: Arc<AtomicBool>,
    is_leader: Arc<AtomicBool>,
) {
    'outer: while !stop.load(Ordering::SeqCst) {
        // Simulated crash: do absolutely nothing (no heartbeats!) until
        // restarted. The coordination session expires meanwhile.
        if crash.load(Ordering::SeqCst) {
            is_leader.store(false, Ordering::SeqCst);
            while crash.load(Ordering::SeqCst) && !stop.load(Ordering::SeqCst) {
                std::thread::sleep(Duration::from_millis(5));
            }
            continue;
        }

        // Fresh session + election candidacy.
        let client = coord.connect(&cfg.name);
        let election = match LeaderElection::join(&client, layout::election(), &cfg.name) {
            Ok(e) => e,
            Err(_) => {
                std::thread::sleep(Duration::from_millis(20));
                continue;
            }
        };

        // Follower: wait for leadership in short slices, heartbeating.
        loop {
            if stop.load(Ordering::SeqCst) {
                break 'outer;
            }
            if crash.load(Ordering::SeqCst) {
                continue 'outer;
            }
            match election.wait_leadership(Duration::from_millis(50)) {
                Ok(true) => break,
                Ok(false) => {
                    if client.ping().is_err() {
                        continue 'outer;
                    }
                }
                Err(_) => continue 'outer,
            }
        }

        // Leader: recover, then serve. Recovery and repair can block on
        // long device or deserialization work, so heartbeat from the side;
        // the guard drops (and heartbeats stop) on every exit path below,
        // including simulated crashes.
        let keepalive = client.keepalive();
        metrics.record_event(clock.now_ms(), &cfg.name, "leader-elected");
        let mut controller = Controller::new(
            cfg.clone(),
            &client,
            Arc::clone(&service),
            mode.clone(),
            Arc::clone(&clock),
            metrics.clone(),
        );
        if controller.recover().is_err() {
            continue 'outer;
        }
        is_leader.store(true, Ordering::SeqCst);
        metrics.record_event(clock.now_ms(), &cfg.name, "recovery-complete");
        loop {
            if stop.load(Ordering::SeqCst) {
                break 'outer;
            }
            if crash.load(Ordering::SeqCst) {
                is_leader.store(false, Ordering::SeqCst);
                drop(keepalive);
                continue 'outer;
            }
            match controller.step() {
                Ok(true) => {}
                Ok(false) => controller.wait_for_input(Duration::from_millis(cfg.poll_ms)),
                Err(_) => {
                    // Session expired or quorum lost: resign and retry from
                    // scratch; persistent state carries everything needed.
                    is_leader.store(false, Ordering::SeqCst);
                    metrics.record_event(clock.now_ms(), &cfg.name, "leadership-lost");
                    continue 'outer;
                }
            }
        }
    }
    is_leader.store(false, Ordering::SeqCst);
}

//! Stored procedures and the transaction context they execute in
//! (paper §2.2, §3.1.2).
//!
//! A stored procedure is orchestration logic composed of queries and
//! actions. During logical execution the procedure runs against a
//! [`TxnContext`]: `query` reads the logical tree under read locks, `act`
//! applies an action's simulated effect under write locks, records the
//! execution-log entry with its undo, and checks every constraint whose
//! scope covers the touched path. The physical layer later replays the
//! accumulated log — the procedure body itself never touches a device.

use std::collections::HashMap;
use std::sync::Arc;

use tropic_model::{ConstraintSet, Path, Tree, Value};

use crate::actions::ActionRegistry;
use crate::error::ProcError;
use crate::locks::{with_intentions, LockManager, LockMode, LockRequest};
use crate::txn::{LogRecord, TxnId};

/// Orchestration logic invoked as a transaction.
pub trait StoredProcedure: Send + Sync {
    /// Procedure name clients submit.
    fn name(&self) -> &str;

    /// Runs the procedure's logical execution.
    fn execute(&self, ctx: &mut TxnContext<'_>) -> Result<(), ProcError>;

    /// Human-readable description.
    fn description(&self) -> &str {
        ""
    }
}

/// A [`StoredProcedure`] built from a closure.
pub struct FnProcedure<F> {
    name: String,
    description: String,
    body: F,
}

impl<F> FnProcedure<F>
where
    F: Fn(&mut TxnContext<'_>) -> Result<(), ProcError> + Send + Sync,
{
    /// Creates a closure-backed procedure.
    pub fn new(name: impl Into<String>, body: F) -> Self {
        FnProcedure {
            name: name.into(),
            description: String::new(),
            body,
        }
    }

    /// Adds a description.
    pub fn describe(mut self, text: impl Into<String>) -> Self {
        self.description = text.into();
        self
    }
}

impl<F> StoredProcedure for FnProcedure<F>
where
    F: Fn(&mut TxnContext<'_>) -> Result<(), ProcError> + Send + Sync,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn execute(&self, ctx: &mut TxnContext<'_>) -> Result<(), ProcError> {
        (self.body)(ctx)
    }

    fn description(&self) -> &str {
        &self.description
    }
}

/// The procedures a platform instance serves.
#[derive(Clone, Default)]
pub struct ProcRegistry {
    procs: HashMap<String, Arc<dyn StoredProcedure>>,
}

impl ProcRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a procedure.
    pub fn register(&mut self, proc_: Arc<dyn StoredProcedure>) {
        self.procs.insert(proc_.name().to_owned(), proc_);
    }

    /// Looks up a procedure by name.
    pub fn get(&self, name: &str) -> Option<Arc<dyn StoredProcedure>> {
        self.procs.get(name).cloned()
    }

    /// Number of registered procedures.
    pub fn len(&self) -> usize {
        self.procs.len()
    }

    /// Returns `true` if no procedures are registered.
    pub fn is_empty(&self) -> bool {
        self.procs.is_empty()
    }

    /// Names of all registered procedures, sorted.
    pub fn names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.procs.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }
}

/// The environment a stored procedure executes in during logical simulation.
pub struct TxnContext<'a> {
    txn_id: TxnId,
    args: Vec<Value>,
    tree: &'a mut Tree,
    actions: &'a ActionRegistry,
    constraints: &'a ConstraintSet,
    locks: &'a mut LockManager,
    log: Vec<LogRecord>,
}

impl<'a> TxnContext<'a> {
    /// Creates a context for one transaction's logical execution.
    pub fn new(
        txn_id: TxnId,
        args: Vec<Value>,
        tree: &'a mut Tree,
        actions: &'a ActionRegistry,
        constraints: &'a ConstraintSet,
        locks: &'a mut LockManager,
    ) -> Self {
        TxnContext {
            txn_id,
            args,
            tree,
            actions,
            constraints,
            locks,
            log: Vec::new(),
        }
    }

    /// The transaction id.
    pub fn txn_id(&self) -> TxnId {
        self.txn_id
    }

    /// The procedure's arguments.
    pub fn args(&self) -> &[Value] {
        &self.args
    }

    /// Reads argument `i` as a string.
    pub fn arg_str(&self, i: usize) -> Result<String, ProcError> {
        self.args
            .get(i)
            .and_then(Value::as_str)
            .map(str::to_owned)
            .ok_or_else(|| ProcError::Logic(format!("argument {i} missing or not a string")))
    }

    /// Reads argument `i` as an integer.
    pub fn arg_int(&self, i: usize) -> Result<i64, ProcError> {
        self.args
            .get(i)
            .and_then(Value::as_int)
            .ok_or_else(|| ProcError::Logic(format!("argument {i} missing or not an int")))
    }

    /// The execution log accumulated so far.
    pub fn log(&self) -> &[LogRecord] {
        &self.log
    }

    /// Consumes the context, yielding the execution log.
    pub fn into_log(self) -> Vec<LogRecord> {
        self.log
    }

    /// Reads the logical tree *without* taking locks. Intended for placement
    /// heuristics (picking a candidate host) whose correctness is guaranteed
    /// by the constraints checked when the subsequent actions run — not for
    /// reads the transaction's semantics depend on. Use [`TxnContext::query`]
    /// for isolated reads.
    pub fn peek<T>(&self, f: impl FnOnce(&Tree) -> T) -> T {
        f(self.tree)
    }

    /// Runs a read-only query at `path` under a read lock (paper §2.2:
    /// queries provide read-only access; the lock manager acquires R and IR
    /// locks for them, §3.1.3).
    pub fn query<T>(&mut self, path: &Path, f: impl FnOnce(&Tree) -> T) -> Result<T, ProcError> {
        if self.tree.is_inconsistent(path) {
            return Err(ProcError::Inconsistent(path.clone()));
        }
        self.acquire(with_intentions(path, LockMode::R))?;
        Ok(f(self.tree))
    }

    /// Applies the named action at `object` (paper §3.1.2):
    ///
    /// 1. deny if the subtree is marked inconsistent (§4),
    /// 2. take W + intention locks, plus the constraint read lock on the
    ///    highest constrained ancestor (§3.1.3),
    /// 3. derive the undo from the pre-action tree and append the log record,
    /// 4. apply the logical effect,
    /// 5. check every constraint whose anchor covers the touched path.
    ///
    /// A lock conflict surfaces as [`ProcError::Conflict`] (the scheduler
    /// defers the transaction); a violated constraint as
    /// [`ProcError::Violation`] (the transaction aborts).
    pub fn act(&mut self, object: &Path, action: &str, args: Vec<Value>) -> Result<(), ProcError> {
        if self.tree.is_inconsistent(object) {
            return Err(ProcError::Inconsistent(object.clone()));
        }
        let def = self
            .actions
            .get(action)
            .ok_or_else(|| ProcError::Logic(format!("unknown action `{action}`")))?
            .clone();

        let mut requests: Vec<LockRequest> = with_intentions(object, LockMode::W);
        if let Some(anchor) = self
            .constraints
            .highest_constrained_ancestor(self.tree, object)
        {
            requests.extend(with_intentions(&anchor, LockMode::R));
        }
        self.acquire(requests)?;

        let undo = def.derive_undo(self.tree, object, &args);
        let (undo_action, undo_object, undo_args) = match undo {
            Some(u) => (Some(u.action), Some(u.object), u.args),
            None => (None, None, Vec::new()),
        };
        def.apply_logical(self.tree, object, &args)
            .map_err(ProcError::Logic)?;
        self.log.push(LogRecord {
            seq: self.log.len() + 1,
            object: object.clone(),
            action: action.to_owned(),
            args,
            undo_action,
            undo_object,
            undo_args,
            best_effort: false,
        });
        self.constraints
            .check_touched(self.tree, object)
            .map_err(ProcError::Violation)?;
        Ok(())
    }

    /// Plans the corrective actions that bring `physical` in line with the
    /// logical tree under `scope`, appending them to the execution log
    /// *without* applying logical effects — the logical layer already holds
    /// the desired state; only the physical layer must move.
    ///
    /// This is the logical half of a twin-scheduled repair transaction
    /// (see [`crate::twin`]). It takes W + intention locks on `scope` so
    /// the repair serializes with in-flight transactions there (a conflict
    /// defers it like any transaction), and — unlike [`TxnContext::act`] —
    /// it does **not** deny inconsistency-marked subtrees: repair is
    /// precisely what clears them (paper §4). Every log record's undo is
    /// the universal no-op, so rolling back a half-applied repair changes
    /// nothing in either layer. Returns the number of corrective actions
    /// planned; zero means the layers already agree and the transaction
    /// commits trivially.
    pub fn reconcile(
        &mut self,
        scope: &Path,
        physical: &Tree,
        rules: &crate::reconcile::RepairRules,
    ) -> Result<usize, ProcError> {
        self.acquire(with_intentions(scope, LockMode::W))?;
        let diffs = self.tree.diff(physical, scope);
        let plan = rules.plan(&diffs, self.tree);
        let planned = plan.actions.len();
        for call in plan.actions {
            self.log.push(LogRecord {
                seq: self.log.len() + 1,
                object: call.object,
                action: call.action,
                args: call.args,
                undo_action: Some(tropic_devices::NOOP_ACTION.to_owned()),
                undo_object: None,
                undo_args: Vec::new(),
                best_effort: true,
            });
        }
        Ok(planned)
    }

    fn acquire(&mut self, requests: Vec<LockRequest>) -> Result<(), ProcError> {
        self.locks
            .try_acquire(self.txn_id, &requests)
            .map_err(|c| ProcError::Conflict(c.path))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actions::{ActionDef, UndoSpec};
    use tropic_model::{FnConstraint, Node};

    fn registry() -> ActionRegistry {
        let mut reg = ActionRegistry::new();
        reg.register(ActionDef::new(
            "setN",
            |tree, object, args| {
                let v = args[0].as_int().ok_or("int expected")?;
                tree.set_attr(object, "n", v).map_err(|e| e.to_string())?;
                Ok(())
            },
            |tree, object, _| {
                let old = tree.attr(object, "n").cloned().unwrap_or(Value::Int(0));
                Some(UndoSpec {
                    object: object.clone(),
                    action: "setN".into(),
                    args: vec![old],
                })
            },
        ));
        reg
    }

    fn tree() -> Tree {
        let mut t = Tree::new();
        t.insert(
            &Path::parse("/a").unwrap(),
            Node::new("box").with_attr("n", 1i64),
        )
        .unwrap();
        t.insert(
            &Path::parse("/b").unwrap(),
            Node::new("box").with_attr("n", 2i64),
        )
        .unwrap();
        t
    }

    fn limit_constraint() -> ConstraintSet {
        let mut set = ConstraintSet::new();
        set.register(Arc::new(FnConstraint::new(
            "n-limit",
            "box",
            |tree: &Tree, anchor: &Path| {
                let n = tree.attr(anchor, "n").and_then(Value::as_int).unwrap_or(0);
                if n > 100 {
                    Err(format!("n = {n} exceeds 100"))
                } else {
                    Ok(())
                }
            },
        )));
        set
    }

    #[test]
    fn act_records_log_and_applies_effect() {
        let reg = registry();
        let cons = ConstraintSet::new();
        let mut locks = LockManager::new();
        let mut t = tree();
        let mut ctx = TxnContext::new(1, vec![], &mut t, &reg, &cons, &mut locks);
        let a = Path::parse("/a").unwrap();
        ctx.act(&a, "setN", vec![Value::Int(42)]).unwrap();
        assert_eq!(ctx.log().len(), 1);
        assert_eq!(ctx.log()[0].seq, 1);
        assert_eq!(ctx.log()[0].undo_args, vec![Value::Int(1)]);
        drop(ctx);
        assert_eq!(t.attr_int(&a, "n").unwrap(), 42);
        assert!(locks.holds(1, &a, LockMode::W));
    }

    #[test]
    fn violation_aborts_after_effect() {
        let reg = registry();
        let cons = limit_constraint();
        let mut locks = LockManager::new();
        let mut t = tree();
        let mut ctx = TxnContext::new(1, vec![], &mut t, &reg, &cons, &mut locks);
        let err = ctx
            .act(&Path::parse("/a").unwrap(), "setN", vec![Value::Int(500)])
            .unwrap_err();
        assert!(matches!(err, ProcError::Violation(_)));
        // The effect was applied (callers roll back via the log) and the log
        // record exists so rollback can find the undo.
        assert_eq!(ctx.log().len(), 1);
    }

    #[test]
    fn conflict_reported_for_locked_resource() {
        let reg = registry();
        let cons = ConstraintSet::new();
        let mut locks = LockManager::new();
        let a = Path::parse("/a").unwrap();
        locks
            .try_acquire(99, &with_intentions(&a, LockMode::W))
            .unwrap();
        let mut t = tree();
        let mut ctx = TxnContext::new(1, vec![], &mut t, &reg, &cons, &mut locks);
        let err = ctx.act(&a, "setN", vec![Value::Int(5)]).unwrap_err();
        assert!(matches!(err, ProcError::Conflict(_)));
        assert!(ctx.log().is_empty());
    }

    #[test]
    fn constraint_lock_freezes_anchor() {
        // With a constraint anchored at "box", a write to /a takes R on /a
        // itself (highest constrained ancestor), so another txn writing /a
        // conflicts — and even a query of /a by another txn conflicts with
        // nothing, while a write does.
        let reg = registry();
        let cons = limit_constraint();
        let mut locks = LockManager::new();
        let mut t = tree();
        {
            let mut ctx = TxnContext::new(1, vec![], &mut t, &reg, &cons, &mut locks);
            ctx.act(&Path::parse("/a").unwrap(), "setN", vec![Value::Int(5)])
                .unwrap();
        }
        // Txn 2 can write the unrelated /b.
        let mut ctx2 = TxnContext::new(2, vec![], &mut t, &reg, &cons, &mut locks);
        ctx2.act(&Path::parse("/b").unwrap(), "setN", vec![Value::Int(6)])
            .unwrap();
        drop(ctx2);
        // Txn 3 conflicts on /a.
        let mut ctx3 = TxnContext::new(3, vec![], &mut t, &reg, &cons, &mut locks);
        assert!(matches!(
            ctx3.act(&Path::parse("/a").unwrap(), "setN", vec![Value::Int(7)]),
            Err(ProcError::Conflict(_))
        ));
    }

    #[test]
    fn query_takes_read_lock() {
        let reg = registry();
        let cons = ConstraintSet::new();
        let mut locks = LockManager::new();
        let mut t = tree();
        let a = Path::parse("/a").unwrap();
        {
            let mut ctx = TxnContext::new(1, vec![], &mut t, &reg, &cons, &mut locks);
            let n = ctx
                .query(&a, |tree| tree.attr_int(&a, "n").unwrap())
                .unwrap();
            assert_eq!(n, 1);
        }
        assert!(locks.holds(1, &a, LockMode::R));
        // A writer conflicts with the outstanding reader.
        let mut ctx2 = TxnContext::new(2, vec![], &mut t, &reg, &cons, &mut locks);
        assert!(matches!(
            ctx2.act(&a, "setN", vec![Value::Int(9)]),
            Err(ProcError::Conflict(_))
        ));
    }

    #[test]
    fn inconsistent_subtree_denied() {
        let reg = registry();
        let cons = ConstraintSet::new();
        let mut locks = LockManager::new();
        let mut t = tree();
        let a = Path::parse("/a").unwrap();
        t.mark_inconsistent(&a, true).unwrap();
        let mut ctx = TxnContext::new(1, vec![], &mut t, &reg, &cons, &mut locks);
        assert!(matches!(
            ctx.act(&a, "setN", vec![Value::Int(5)]),
            Err(ProcError::Inconsistent(_))
        ));
        assert!(matches!(
            ctx.query(&a, |_| ()),
            Err(ProcError::Inconsistent(_))
        ));
    }

    #[test]
    fn unknown_action_is_logic_error() {
        let reg = ActionRegistry::new();
        let cons = ConstraintSet::new();
        let mut locks = LockManager::new();
        let mut t = tree();
        let mut ctx = TxnContext::new(1, vec![], &mut t, &reg, &cons, &mut locks);
        assert!(matches!(
            ctx.act(&Path::parse("/a").unwrap(), "nope", vec![]),
            Err(ProcError::Logic(_))
        ));
    }

    #[test]
    fn arg_accessors() {
        let reg = registry();
        let cons = ConstraintSet::new();
        let mut locks = LockManager::new();
        let mut t = tree();
        let ctx = TxnContext::new(
            1,
            vec![Value::from("vm1"), Value::Int(2048)],
            &mut t,
            &reg,
            &cons,
            &mut locks,
        );
        assert_eq!(ctx.arg_str(0).unwrap(), "vm1");
        assert_eq!(ctx.arg_int(1).unwrap(), 2048);
        assert!(ctx.arg_str(1).is_err());
        assert!(ctx.arg_int(7).is_err());
        assert_eq!(ctx.txn_id(), 1);
        assert_eq!(ctx.args().len(), 2);
    }

    #[test]
    fn reconcile_logs_repairs_without_logical_effects() {
        use crate::reconcile::RepairRules;
        let reg = registry();
        let cons = ConstraintSet::new();
        let mut locks = LockManager::new();
        let mut t = tree();
        let a = Path::parse("/a").unwrap();
        // Repair must be allowed even on inconsistency-marked subtrees.
        t.mark_inconsistent(&a, true).unwrap();
        // Physical layer drifted: n = 9 instead of the logical 1.
        let mut physical = t.clone();
        physical.set_attr(&a, "n", 9i64).unwrap();
        let mut rules = RepairRules::new();
        rules.register(|diff, _| {
            let tropic_model::DiffEntry::AttrChanged { path, left, .. } = diff else {
                return Vec::new();
            };
            vec![tropic_devices::ActionCall::new(
                path.clone(),
                "setN",
                vec![left.clone().unwrap()],
            )]
        });
        let mut ctx = TxnContext::new(7, vec![], &mut t, &reg, &cons, &mut locks);
        let planned = ctx.reconcile(&Path::root(), &physical, &rules).unwrap();
        assert_eq!(planned, 1);
        let log = ctx.log().to_vec();
        drop(ctx);
        assert_eq!(log[0].action, "setN");
        assert_eq!(log[0].args, vec![Value::Int(1)]);
        assert_eq!(
            log[0].undo_action.as_deref(),
            Some(tropic_devices::NOOP_ACTION)
        );
        // The logical tree is untouched (it already holds desired state)...
        assert_eq!(t.attr_int(&a, "n").unwrap(), 1);
        // ...and the scope is write-locked until the txn finalizes.
        assert!(locks.holds(7, &Path::root(), LockMode::W));
        // A conflicting holder defers the repair instead.
        let mut t2 = tree();
        let mut locks2 = LockManager::new();
        locks2
            .try_acquire(99, &with_intentions(&a, LockMode::W))
            .unwrap();
        let mut ctx2 = TxnContext::new(8, vec![], &mut t2, &reg, &cons, &mut locks2);
        assert!(matches!(
            ctx2.reconcile(&Path::root(), &physical, &rules),
            Err(ProcError::Conflict(_))
        ));
    }

    #[test]
    fn proc_registry() {
        let mut reg = ProcRegistry::new();
        assert!(reg.is_empty());
        reg.register(Arc::new(
            FnProcedure::new("noop", |_ctx| Ok(())).describe("Does nothing."),
        ));
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.names(), vec!["noop"]);
        let p = reg.get("noop").unwrap();
        assert_eq!(p.description(), "Does nothing.");
        assert!(reg.get("missing").is_none());
    }
}

//! Action definitions: the dual logical/physical primitives of TROPIC
//! (paper §2.2).
//!
//! Every action is defined twice. Its *logical* effect is a function over
//! the in-memory data model, applied during simulation; its *physical*
//! effect is the device API call the worker replays from the execution log.
//! An action also knows how to derive its *undo* — computed against the
//! pre-action tree, because undo arguments often need state the action is
//! about to overwrite.

use std::collections::HashMap;
use std::sync::Arc;

use tropic_model::{Path, Tree, Value};

/// The undo of one action application: an action call to execute in reverse
/// chronological order on rollback (paper §3.2).
#[derive(Clone, Debug, PartialEq)]
pub struct UndoSpec {
    /// Object path the undo addresses (usually the forward object).
    pub object: Path,
    /// Undo action name.
    pub action: String,
    /// Undo arguments.
    pub args: Vec<Value>,
}

/// Signature of an action's logical effect: mutate the tree or explain why
/// the action is invalid.
pub type LogicalFn = dyn Fn(&mut Tree, &Path, &[Value]) -> Result<(), String> + Send + Sync;

/// Signature of the undo derivation, evaluated against the pre-action tree.
/// Returning `None` marks the action irreversible.
pub type UndoFn = dyn Fn(&Tree, &Path, &[Value]) -> Option<UndoSpec> + Send + Sync;

/// A registered action type.
#[derive(Clone)]
pub struct ActionDef {
    name: String,
    logical: Arc<LogicalFn>,
    undo: Arc<UndoFn>,
    description: String,
}

impl ActionDef {
    /// Creates an action definition.
    pub fn new(
        name: impl Into<String>,
        logical: impl Fn(&mut Tree, &Path, &[Value]) -> Result<(), String> + Send + Sync + 'static,
        undo: impl Fn(&Tree, &Path, &[Value]) -> Option<UndoSpec> + Send + Sync + 'static,
    ) -> Self {
        ActionDef {
            name: name.into(),
            logical: Arc::new(logical),
            undo: Arc::new(undo),
            description: String::new(),
        }
    }

    /// Adds a human-readable description.
    pub fn describe(mut self, text: impl Into<String>) -> Self {
        self.description = text.into();
        self
    }

    /// The action name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The description.
    pub fn description(&self) -> &str {
        &self.description
    }

    /// Applies the logical effect to `tree`.
    pub fn apply_logical(
        &self,
        tree: &mut Tree,
        object: &Path,
        args: &[Value],
    ) -> Result<(), String> {
        (self.logical)(tree, object, args)
    }

    /// Derives the undo call from the pre-action tree.
    pub fn derive_undo(&self, tree: &Tree, object: &Path, args: &[Value]) -> Option<UndoSpec> {
        (self.undo)(tree, object, args)
    }
}

/// The set of actions a platform instance knows (services register theirs
/// at startup).
#[derive(Clone, Default)]
pub struct ActionRegistry {
    actions: HashMap<String, ActionDef>,
}

impl ActionRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an action, replacing any previous definition of the name.
    pub fn register(&mut self, def: ActionDef) {
        self.actions.insert(def.name().to_owned(), def);
    }

    /// Looks up an action by name.
    pub fn get(&self, name: &str) -> Option<&ActionDef> {
        self.actions.get(name)
    }

    /// Number of registered actions.
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// Returns `true` if no actions are registered.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// Names of all registered actions, sorted.
    pub fn names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.actions.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tropic_model::Node;

    /// A minimal pair of inverse actions over an integer attribute.
    fn incr_def() -> ActionDef {
        ActionDef::new(
            "incr",
            |tree, object, args| {
                let by = args[0].as_int().ok_or("incr needs an int")?;
                let cur = tree.attr_int(object, "n").map_err(|e| e.to_string())?;
                tree.set_attr(object, "n", cur + by)
                    .map_err(|e| e.to_string())?;
                Ok(())
            },
            |_, object, args| {
                Some(UndoSpec {
                    object: object.clone(),
                    action: "decr".into(),
                    args: args.to_vec(),
                })
            },
        )
        .describe("Adds to the counter attribute.")
    }

    fn tree() -> Tree {
        let mut t = Tree::new();
        t.insert(
            &Path::parse("/c").unwrap(),
            Node::new("counter").with_attr("n", 10i64),
        )
        .unwrap();
        t
    }

    #[test]
    fn logical_apply_and_undo_derivation() {
        let def = incr_def();
        let mut t = tree();
        let c = Path::parse("/c").unwrap();
        let undo = def.derive_undo(&t, &c, &[Value::Int(5)]).unwrap();
        def.apply_logical(&mut t, &c, &[Value::Int(5)]).unwrap();
        assert_eq!(t.attr_int(&c, "n").unwrap(), 15);
        assert_eq!(undo.action, "decr");
        assert_eq!(undo.args, vec![Value::Int(5)]);
    }

    #[test]
    fn logical_error_propagates() {
        let def = incr_def();
        let mut t = tree();
        let err = def
            .apply_logical(&mut t, &Path::parse("/c").unwrap(), &[Value::from("x")])
            .unwrap_err();
        assert!(err.contains("int"));
    }

    #[test]
    fn registry_lookup() {
        let mut reg = ActionRegistry::new();
        assert!(reg.is_empty());
        reg.register(incr_def());
        assert_eq!(reg.len(), 1);
        assert!(reg.get("incr").is_some());
        assert!(reg.get("decr").is_none());
        assert_eq!(reg.names(), vec!["incr"]);
        assert_eq!(
            reg.get("incr").unwrap().description(),
            "Adds to the counter attribute."
        );
    }

    #[test]
    fn irreversible_action() {
        let def = ActionDef::new("wipe", |_, _, _| Ok(()), |_, _, _| None);
        assert!(def.derive_undo(&Tree::new(), &Path::root(), &[]).is_none());
    }
}

//! Multi-granularity lock manager (paper §3.1.3).
//!
//! TROPIC's concurrency control is pessimistic and hierarchical. A
//! transaction takes write (`W`) locks on objects its actions modify and
//! read (`R`) locks on objects its queries inspect; intention locks
//! (`IW`/`IR`) on every ancestor summarize descendant locking so conflicts
//! are detected high in the tree. Writes additionally take an `R` lock on
//! the highest ancestor that anchors a constraint, freezing the whole scope
//! the constraint reasons over.
//!
//! Acquisition never blocks: a conflicting transaction is *deferred* back
//! to the front of `todoQ` by the scheduler, so deadlock is impossible.

use std::collections::HashMap;

use tropic_model::Path;

use crate::txn::TxnId;

/// Lock modes, per the paper's footnote 1: IW conflicts with R and W; IR
/// conflicts with W.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum LockMode {
    /// Shared read lock.
    R,
    /// Exclusive write lock.
    W,
    /// Intention to read somewhere below.
    IR,
    /// Intention to write somewhere below.
    IW,
}

impl LockMode {
    /// The standard multi-granularity compatibility matrix.
    pub fn compatible(self, other: LockMode) -> bool {
        use LockMode::*;
        match (self, other) {
            (IR, IR) | (IR, IW) | (IW, IR) | (IW, IW) | (IR, R) | (R, IR) | (R, R) => true,
            (W, _) | (_, W) | (IW, R) | (R, IW) => false,
        }
    }

    fn bit(self) -> u8 {
        match self {
            LockMode::R => 1,
            LockMode::W => 2,
            LockMode::IR => 4,
            LockMode::IW => 8,
        }
    }

    fn from_bits(bits: u8) -> impl Iterator<Item = LockMode> {
        [LockMode::R, LockMode::W, LockMode::IR, LockMode::IW]
            .into_iter()
            .filter(move |m| bits & m.bit() != 0)
    }
}

/// One lock request: a mode on a path.
pub type LockRequest = (Path, LockMode);

/// Expands a leaf-level request into the full hierarchical request set:
/// the mode itself on `path` plus the matching intention mode on every
/// strict ancestor.
pub fn with_intentions(path: &Path, mode: LockMode) -> Vec<LockRequest> {
    let intention = match mode {
        LockMode::R | LockMode::IR => LockMode::IR,
        LockMode::W | LockMode::IW => LockMode::IW,
    };
    let mut out: Vec<LockRequest> = path
        .ancestors()
        .into_iter()
        .map(|a| (a, intention))
        .collect();
    out.push((path.clone(), mode));
    out
}

/// A conflict discovered during acquisition.
#[derive(Clone, Debug, PartialEq)]
pub struct LockConflict {
    /// The contended path.
    pub path: Path,
    /// The transaction holding the incompatible lock.
    pub holder: TxnId,
    /// The mode that was requested.
    pub requested: LockMode,
}

/// The lock table: per-path, per-transaction mode sets.
#[derive(Debug, Default)]
pub struct LockManager {
    table: HashMap<Path, HashMap<TxnId, u8>>,
}

impl LockManager {
    /// Creates an empty lock manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attempts to acquire every request for `txn`, all-or-nothing.
    ///
    /// A transaction never conflicts with itself; re-acquisition and
    /// upgrades are permitted as long as no *other* holder is incompatible.
    /// On conflict nothing is acquired and the first conflict is returned.
    pub fn try_acquire(
        &mut self,
        txn: TxnId,
        requests: &[LockRequest],
    ) -> Result<(), LockConflict> {
        for (path, mode) in requests {
            if let Some(holders) = self.table.get(path) {
                for (&holder, &bits) in holders {
                    if holder == txn {
                        continue;
                    }
                    for held in LockMode::from_bits(bits) {
                        if !mode.compatible(held) {
                            return Err(LockConflict {
                                path: path.clone(),
                                holder,
                                requested: *mode,
                            });
                        }
                    }
                }
            }
        }
        for (path, mode) in requests {
            *self
                .table
                .entry(path.clone())
                .or_default()
                .entry(txn)
                .or_insert(0) |= mode.bit();
        }
        Ok(())
    }

    /// Releases every lock held by `txn`.
    pub fn release_all(&mut self, txn: TxnId) {
        self.table.retain(|_, holders| {
            holders.remove(&txn);
            !holders.is_empty()
        });
    }

    /// Returns `true` if `txn` holds `mode` on `path`.
    pub fn holds(&self, txn: TxnId, path: &Path, mode: LockMode) -> bool {
        self.table
            .get(path)
            .and_then(|h| h.get(&txn))
            .map(|&bits| bits & mode.bit() != 0)
            .unwrap_or(false)
    }

    /// All locks currently held by `txn`, for recovery re-acquisition.
    pub fn locks_of(&self, txn: TxnId) -> Vec<LockRequest> {
        let mut out = Vec::new();
        for (path, holders) in &self.table {
            if let Some(&bits) = holders.get(&txn) {
                for mode in LockMode::from_bits(bits) {
                    out.push((path.clone(), mode));
                }
            }
        }
        out
    }

    /// Number of paths with at least one lock.
    pub fn locked_path_count(&self) -> usize {
        self.table.len()
    }

    /// Returns `true` if no locks are held at all.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Path {
        Path::parse(s).unwrap()
    }

    #[test]
    fn compatibility_matrix() {
        use LockMode::*;
        // Compatible pairs.
        for (a, b) in [(IR, IR), (IR, IW), (IW, IW), (IR, R), (R, R)] {
            assert!(a.compatible(b), "{a:?} vs {b:?}");
            assert!(b.compatible(a), "{b:?} vs {a:?}");
        }
        // Conflicting pairs (paper footnote 1: IW conflicts with R/W, IR
        // conflicts with W).
        for (a, b) in [(W, W), (W, R), (W, IR), (W, IW), (IW, R)] {
            assert!(!a.compatible(b), "{a:?} vs {b:?}");
            assert!(!b.compatible(a), "{b:?} vs {a:?}");
        }
    }

    #[test]
    fn with_intentions_expands_ancestors() {
        let reqs = with_intentions(&p("/vmRoot/h1/vm1"), LockMode::W);
        assert_eq!(reqs.len(), 4);
        assert_eq!(reqs[0], (Path::root(), LockMode::IW));
        assert_eq!(reqs[1], (p("/vmRoot"), LockMode::IW));
        assert_eq!(reqs[2], (p("/vmRoot/h1"), LockMode::IW));
        assert_eq!(reqs[3], (p("/vmRoot/h1/vm1"), LockMode::W));
        let reads = with_intentions(&p("/a"), LockMode::R);
        assert_eq!(
            reads,
            vec![(Path::root(), LockMode::IR), (p("/a"), LockMode::R)]
        );
    }

    #[test]
    fn disjoint_writers_coexist() {
        let mut lm = LockManager::new();
        lm.try_acquire(1, &with_intentions(&p("/vmRoot/h1/vm1"), LockMode::W))
            .unwrap();
        lm.try_acquire(2, &with_intentions(&p("/vmRoot/h2/vm1"), LockMode::W))
            .unwrap();
        assert!(lm.holds(1, &p("/vmRoot/h1/vm1"), LockMode::W));
        assert!(lm.holds(2, &p("/vmRoot"), LockMode::IW));
    }

    #[test]
    fn same_object_writers_conflict() {
        let mut lm = LockManager::new();
        lm.try_acquire(1, &with_intentions(&p("/vmRoot/h1"), LockMode::W))
            .unwrap();
        let err = lm
            .try_acquire(2, &with_intentions(&p("/vmRoot/h1"), LockMode::W))
            .unwrap_err();
        assert_eq!(err.holder, 1);
        assert_eq!(err.path, p("/vmRoot/h1"));
    }

    #[test]
    fn ancestor_read_blocks_descendant_write() {
        // The constraint-lock rule: R on the host makes the whole subtree
        // read-only to other transactions, because a descendant writer needs
        // IW on the host, and IW conflicts with R.
        let mut lm = LockManager::new();
        lm.try_acquire(1, &with_intentions(&p("/vmRoot/h1"), LockMode::R))
            .unwrap();
        let err = lm
            .try_acquire(2, &with_intentions(&p("/vmRoot/h1/vm1"), LockMode::W))
            .unwrap_err();
        assert_eq!(err.path, p("/vmRoot/h1"));
        // But another reader of a descendant is fine.
        lm.try_acquire(3, &with_intentions(&p("/vmRoot/h1/vm1"), LockMode::R))
            .unwrap();
    }

    #[test]
    fn writer_blocks_ancestor_read() {
        let mut lm = LockManager::new();
        lm.try_acquire(1, &with_intentions(&p("/vmRoot/h1/vm1"), LockMode::W))
            .unwrap();
        // IW on /vmRoot/h1 conflicts with a new R there.
        let err = lm
            .try_acquire(2, &with_intentions(&p("/vmRoot/h1"), LockMode::R))
            .unwrap_err();
        assert_eq!(err.path, p("/vmRoot/h1"));
    }

    #[test]
    fn same_txn_upgrades_freely() {
        let mut lm = LockManager::new();
        lm.try_acquire(1, &with_intentions(&p("/a/b"), LockMode::R))
            .unwrap();
        lm.try_acquire(1, &with_intentions(&p("/a/b"), LockMode::W))
            .unwrap();
        // The combined R+IW on /a held by txn 1 does not self-conflict.
        lm.try_acquire(1, &with_intentions(&p("/a"), LockMode::R))
            .unwrap();
        assert!(lm.holds(1, &p("/a/b"), LockMode::R));
        assert!(lm.holds(1, &p("/a/b"), LockMode::W));
    }

    #[test]
    fn all_or_nothing_acquisition() {
        let mut lm = LockManager::new();
        lm.try_acquire(1, &with_intentions(&p("/a/b"), LockMode::W))
            .unwrap();
        // Txn 2 requests two paths; the second conflicts, so neither is taken.
        let mut reqs = with_intentions(&p("/a/c"), LockMode::W);
        reqs.extend(with_intentions(&p("/a/b"), LockMode::W));
        assert!(lm.try_acquire(2, &reqs).is_err());
        assert!(!lm.holds(2, &p("/a/c"), LockMode::W));
        // And a third txn can still take /a/c.
        lm.try_acquire(3, &with_intentions(&p("/a/c"), LockMode::W))
            .unwrap();
    }

    #[test]
    fn release_unblocks() {
        let mut lm = LockManager::new();
        lm.try_acquire(1, &with_intentions(&p("/a"), LockMode::W))
            .unwrap();
        assert!(lm
            .try_acquire(2, &with_intentions(&p("/a"), LockMode::W))
            .is_err());
        lm.release_all(1);
        assert!(lm.is_empty());
        lm.try_acquire(2, &with_intentions(&p("/a"), LockMode::W))
            .unwrap();
    }

    #[test]
    fn locks_of_reports_held_modes() {
        let mut lm = LockManager::new();
        lm.try_acquire(1, &with_intentions(&p("/a/b"), LockMode::W))
            .unwrap();
        let mut locks = lm.locks_of(1);
        locks.sort_by(|a, b| a.0.cmp(&b.0));
        assert_eq!(locks.len(), 3);
        assert_eq!(locks[2], (p("/a/b"), LockMode::W));
        assert!(lm.locks_of(99).is_empty());
    }

    #[test]
    fn readers_share() {
        let mut lm = LockManager::new();
        for txn in 1..=5 {
            lm.try_acquire(txn, &with_intentions(&p("/a"), LockMode::R))
                .unwrap();
        }
        assert!(lm
            .try_acquire(6, &with_intentions(&p("/a"), LockMode::W))
            .is_err());
    }
}

//! Network RPC frontend: the typed client API over a socket.
//!
//! TROPIC's controller is a shared service clients reach over the network
//! (paper §3), not a library they link. This module puts the PR 4 client
//! surface on a TCP socket:
//!
//! * [`RpcServer`] — a `std::net` thread-per-connection socket server
//!   started with [`crate::Tropic::serve_rpc`]. Each connection gets its
//!   own coordination session and dispatches to the same in-process
//!   [`crate::TropicClient`] / [`crate::api::AdminClient`] code paths the
//!   linked-in API uses.
//! * [`RemoteClient`] — a drop-in mirror of the in-process builder API:
//!   [`RemoteClient::submit_request`], [`RemoteClient::submit_batch`],
//!   [`RemoteHandle::wait`]/[`RemoteHandle::try_outcome`],
//!   [`RemoteClient::subscribe`] streaming [`TxnEvent`]s, and the operator
//!   plane via [`RemoteClient::admin`].
//!
//! ## Wire format
//!
//! Every message is one frame of the length-prefixed CRC-32 stream codec
//! the write-ahead log already uses on disk
//! ([`tropic_coord::wal::frame`]): `[len: u32 LE][crc32: u32 LE][payload]`.
//! The payload is a versioned JSON envelope `{"v": 1, "msg": ...}` — the
//! same `v` and bump policy as [`crate::msg::Envelope`] ([`WIRE_VERSION`]).
//! The version is probed **at the frame boundary, before the payload is
//! parsed**: a future-version envelope is rejected with the typed
//! [`ApiError::UnsupportedWireVersion`], never misparsed. Partial reads
//! reassemble; corrupt CRCs and oversized length prefixes fail typed and
//! close the connection (the stream is unsynchronized past them).
//!
//! [`ApiError`] crosses the wire as itself — a remote caller sees the same
//! variants, and the same [`ApiError::retryable`] partition, as an
//! in-process one. Transport-level failures surface as the retryable
//! [`ApiError::Transport`].

#![warn(missing_docs)]

use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use tropic_coord::{write_frame, FrameError, FrameReader};
use tropic_model::Path;

use crate::api::{AdminClient, ApiError, TxnEvent, TxnRequest};
use crate::config::RpcConfig;
use crate::msg::{wire_version_of, AdminResult, Signal, WireError, WIRE_VERSION};
use crate::platform::{PlatformShared, TropicClient};
use crate::twin::TwinEvent;
use crate::txn::{TxnId, TxnOutcome, TxnRecord};

/// Bound on a connect attempt.
const CONNECT_TIMEOUT: Duration = Duration::from_secs(10);
/// Response bound for calls the server answers without blocking.
const CALL_TIMEOUT: Duration = Duration::from_secs(30);
/// Extra slack granted on top of a blocking call's own timeout before the
/// client declares the transport dead.
const READ_GRACE: Duration = Duration::from_secs(10);
/// Fallback wait bound for remote handles without a deadline (mirrors the
/// in-process default).
const DEFAULT_WAIT: Duration = Duration::from_secs(60);
/// Server-side slice for blocking waits, so shutdown is never delayed by a
/// long-waiting remote caller.
const WAIT_SLICE: Duration = Duration::from_millis(250);
/// Bound on any single socket write: a peer that stopped reading (full
/// kernel send buffer) fails the write instead of pinning the thread.
const WRITE_TIMEOUT: Duration = Duration::from_secs(10);

// ---------------------------------------------------------------------
// Wire messages.
// ---------------------------------------------------------------------

/// One client→server call. `Submit`/`SubmitBatch` carry the *same*
/// [`TxnRequest`] the in-process builder produces.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum RpcRequest {
    /// Submit one request; the server assigns the transaction id.
    Submit(TxnRequest),
    /// Submit several requests as one atomic enqueue.
    SubmitBatch(Vec<TxnRequest>),
    /// Non-blocking outcome poll.
    TryOutcome {
        /// The transaction.
        id: TxnId,
    },
    /// Block server-side until the transaction finalizes or `timeout_ms`
    /// passes.
    Wait {
        /// The transaction.
        id: TxnId,
        /// Wait bound in milliseconds.
        timeout_ms: u64,
    },
    /// Fetch the full durable transaction record.
    Record {
        /// The transaction.
        id: TxnId,
    },
    /// Operator plane: reconcile physical state toward the logical layer.
    Repair {
        /// Subtree to reconcile.
        scope: Path,
        /// Result-wait bound in milliseconds.
        timeout_ms: u64,
    },
    /// Operator plane: replace the logical subtree with retrieved state.
    Reload {
        /// Subtree to reload.
        scope: Path,
        /// Result-wait bound in milliseconds.
        timeout_ms: u64,
    },
    /// Operator plane: signal an unresponsive transaction.
    Signal {
        /// The transaction.
        id: TxnId,
        /// TERM or KILL.
        signal: Signal,
    },
    /// Switch this connection into a one-way [`TxnEvent`] stream.
    Subscribe,
    /// Switch this connection into a one-way [`TwinEvent`] stream (digital
    /// twin phase transitions). Additive in wire version 1: pre-twin
    /// servers reject the frame as malformed without dropping the
    /// connection.
    SubscribeTwin,
    /// Liveness probe; the reply carries the platform clock.
    Ping,
    /// Ask the serving process to shut down (used by operational tooling
    /// and the CI smoke test for clean teardown).
    Shutdown,
}

/// One server→client reply, or a streamed subscription event.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum RpcResponse {
    /// A submission was enqueued.
    Submitted {
        /// Server-assigned transaction id.
        id: TxnId,
        /// Resolved admission deadline (platform clock, ms).
        deadline_ms: Option<u64>,
    },
    /// A batch was enqueued atomically.
    SubmittedBatch {
        /// `(id, deadline_ms)` per request, in submission order.
        handles: Vec<(TxnId, Option<u64>)>,
    },
    /// Outcome poll result: `None` while still in flight.
    Outcome(Option<TxnOutcome>),
    /// The durable transaction record, if still retained.
    Record(Option<Box<TxnRecord>>),
    /// An administrative operation's result.
    Admin(AdminResult),
    /// A signal was enqueued.
    Signaled,
    /// The connection is now an event stream.
    Subscribed,
    /// One streamed lifecycle event.
    Event(TxnEvent),
    /// One streamed digital-twin phase transition. Additive in wire
    /// version 1: pre-twin subscribers skip the unknown frame.
    TwinEvent(TwinEvent),
    /// Liveness reply.
    Pong {
        /// Platform clock (ms) when the server answered.
        now_ms: u64,
    },
    /// The server acknowledged a shutdown request.
    ShutdownAck,
    /// The call failed; the payload preserves the retryable partition.
    Error(ApiError),
}

#[derive(Serialize, Deserialize)]
struct RequestEnvelope {
    v: u32,
    msg: RpcRequest,
}

#[derive(Serialize, Deserialize)]
struct ResponseEnvelope {
    v: u32,
    msg: RpcResponse,
}

/// Encodes a call in the current versioned envelope. Fails (as
/// [`ApiError::InvalidRequest`]) only if the request itself cannot be
/// serialized, which a well-formed [`RpcRequest`] never is.
pub fn encode_request(msg: RpcRequest) -> Result<Vec<u8>, ApiError> {
    serde_json::to_vec(&RequestEnvelope {
        v: WIRE_VERSION,
        msg,
    })
    .map_err(|e| ApiError::InvalidRequest(format!("unserializable request: {e}")))
}

/// Encodes a reply in the current versioned envelope.
pub fn encode_response(msg: RpcResponse) -> Result<Vec<u8>, ApiError> {
    serde_json::to_vec(&ResponseEnvelope {
        v: WIRE_VERSION,
        msg,
    })
    .map_err(|e| ApiError::Transport(format!("unserializable response: {e}")))
}

/// Server-side encoding that cannot fail: an unserializable response
/// degrades to an error envelope (and, should even that fail, to a
/// hand-built one whose shape needs no serializer), so the client sees a
/// well-formed error frame instead of a silently dropped connection.
fn encode_response_or_error(msg: RpcResponse) -> Vec<u8> {
    match encode_response(msg) {
        Ok(bytes) => bytes,
        Err(e) => encode_response(RpcResponse::Error(e)).unwrap_or_else(|_| {
            format!(
                r#"{{"v":{WIRE_VERSION},"msg":{{"Error":{{"Transport":"response encoding failed"}}}}}}"#
            )
            .into_bytes()
        }),
    }
}

/// Version gate shared by both decode directions: probed before the
/// payload is parsed, so a future-version envelope whose payload this
/// build cannot even represent still fails with the version error. Unlike
/// the queue codec there is no bare legacy fallback — the socket protocol
/// was born versioned, so an unversioned payload is malformed.
fn check_version(bytes: &[u8]) -> Result<(), WireError> {
    match wire_version_of(bytes) {
        Some(v) if v > WIRE_VERSION => Err(WireError::UnsupportedVersion(v)),
        Some(_) => Ok(()),
        None => Err(WireError::Malformed("missing wire version field".into())),
    }
}

/// Decodes a call, rejecting future versions at the boundary.
pub fn decode_request(bytes: &[u8]) -> Result<RpcRequest, WireError> {
    check_version(bytes)?;
    serde_json::from_slice::<RequestEnvelope>(bytes)
        .map(|e| e.msg)
        .map_err(|e| WireError::Malformed(e.to_string()))
}

/// Decodes a reply, rejecting future versions at the boundary.
pub fn decode_response(bytes: &[u8]) -> Result<RpcResponse, WireError> {
    check_version(bytes)?;
    serde_json::from_slice::<ResponseEnvelope>(bytes)
        .map(|e| e.msg)
        .map_err(|e| WireError::Malformed(e.to_string()))
}

fn transport(e: impl std::fmt::Display) -> ApiError {
    ApiError::Transport(e.to_string())
}

// ---------------------------------------------------------------------
// Server.
// ---------------------------------------------------------------------

/// The listening RPC frontend. Dropping (or [`RpcServer::stop`]ping) it
/// closes the listener and joins every connection thread; stop the server
/// **before** shutting the platform down so in-flight dispatches finish
/// against a live controller.
pub struct RpcServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    shutdown_requested: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl RpcServer {
    pub(crate) fn start(shared: PlatformShared, cfg: RpcConfig) -> Result<Self, ApiError> {
        let listener = TcpListener::bind(&cfg.addr).map_err(transport)?;
        listener.set_nonblocking(true).map_err(transport)?;
        let addr = listener.local_addr().map_err(transport)?;
        let stop = Arc::new(AtomicBool::new(false));
        let shutdown_requested = Arc::new(AtomicBool::new(false));
        let accept = {
            let stop = Arc::clone(&stop);
            let shutdown_requested = Arc::clone(&shutdown_requested);
            std::thread::Builder::new()
                .name("tropic-rpc-accept".into())
                .spawn(move || accept_loop(listener, shared, cfg, &stop, &shutdown_requested))
                .map_err(transport)?
        };
        Ok(RpcServer {
            addr,
            stop,
            shutdown_requested,
            accept: Some(accept),
        })
    }

    /// The bound address (the real port when configured with port `0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether a client asked this serving process to shut down via
    /// [`RpcRequest::Shutdown`]. The server keeps serving — the hosting
    /// process decides when to act on the request.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown_requested.load(Ordering::SeqCst)
    }

    /// Stops accepting, drains connection threads, and joins them.
    pub fn stop(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
    }
}

impl Drop for RpcServer {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

fn accept_loop(
    listener: TcpListener,
    shared: PlatformShared,
    cfg: RpcConfig,
    stop: &Arc<AtomicBool>,
    shutdown_requested: &Arc<AtomicBool>,
) {
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    let mut conn_seq = 0u64;
    let poll = Duration::from_millis(cfg.poll_ms.max(1));
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                shared.metrics.record_rpc_connection();
                conn_seq += 1;
                let shared = shared.clone();
                let cfg = cfg.clone();
                let stop = Arc::clone(stop);
                let shutdown_requested = Arc::clone(shutdown_requested);
                let name = format!("tropic-rpc-conn-{conn_seq}");
                let conn_id = conn_seq;
                match std::thread::Builder::new().name(name).spawn(move || {
                    serve_conn(&shared, &cfg, stream, &stop, &shutdown_requested, conn_id)
                }) {
                    Ok(h) => conns.push(h),
                    Err(_) => {
                        // Spawn failure: the accepted stream drops (peer
                        // sees a reset) and the listener keeps serving.
                    }
                }
                conns.retain(|h| !h.is_finished());
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => std::thread::sleep(poll),
            Err(_) => std::thread::sleep(poll),
        }
    }
    for h in conns {
        let _ = h.join();
    }
}

/// Maps a frame-boundary failure onto the typed taxonomy: an oversized
/// declared length is a request that can never succeed (permanent); a CRC
/// mismatch or mid-frame tear is a damaged transport (retryable over a
/// fresh connection).
fn frame_reject(err: &FrameError) -> ApiError {
    match err {
        FrameError::Oversized { len, max } => ApiError::InvalidRequest(format!(
            "frame of {len} bytes exceeds the server's {max}-byte cap"
        )),
        other => ApiError::Transport(other.to_string()),
    }
}

fn serve_conn(
    shared: &PlatformShared,
    cfg: &RpcConfig,
    mut stream: TcpStream,
    stop: &AtomicBool,
    shutdown_requested: &AtomicBool,
    conn_id: u64,
) {
    // On BSD-likes an accepted socket inherits the listener's O_NONBLOCK;
    // clear it or the read timeout below is ineffective and the idle loop
    // busy-spins on instant EWOULDBLOCK.
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(cfg.poll_ms.max(1))));
    // A bounded write keeps a stalled client (full kernel send buffer,
    // reader gone) from pinning this thread in write_all past shutdown.
    let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
    let mut reader = FrameReader::new();
    // One coordination session per connection, like a linked-in client.
    let client = shared.client(&format!("rpc-conn-{conn_id}"));
    let mut admin: Option<AdminClient> = None;
    while !stop.load(Ordering::SeqCst) {
        let payload = match reader.read_from(&mut stream, cfg.max_frame_bytes) {
            Ok(Some(p)) => p,
            Ok(None) => continue, // idle or partial frame; re-check stop
            Err(FrameError::Closed) => break,
            Err(err) => {
                // Typed reject, then close: past a corrupt or oversized
                // frame the stream is unsynchronized.
                shared.metrics.record_rpc_rejected();
                let resp = RpcResponse::Error(frame_reject(&err));
                let _ = write_frame(&mut stream, &encode_response_or_error(resp));
                break;
            }
        };
        let req = match decode_request(&payload) {
            Ok(req) => req,
            Err(e) => {
                // Version and payload rejects are per-frame: framing stayed
                // aligned, so the connection survives for a retry with a
                // supported envelope.
                shared.metrics.record_rpc_rejected();
                let resp = RpcResponse::Error(ApiError::from(e));
                if write_frame(&mut stream, &encode_response_or_error(resp)).is_err() {
                    break;
                }
                continue;
            }
        };
        shared.metrics.record_rpc_request();
        if matches!(req, RpcRequest::Subscribe | RpcRequest::SubscribeTwin) {
            let twin = matches!(req, RpcRequest::SubscribeTwin);
            if write_frame(
                &mut stream,
                &encode_response_or_error(RpcResponse::Subscribed),
            )
            .is_err()
            {
                break;
            }
            if twin {
                stream_twin_events(shared, &mut stream, stop);
            } else {
                stream_events(shared, &mut stream, stop);
            }
            break;
        }
        let resp = dispatch(shared, &client, &mut admin, stop, shutdown_requested, req);
        if write_frame(&mut stream, &encode_response_or_error(resp)).is_err() {
            break;
        }
    }
}

fn dispatch(
    shared: &PlatformShared,
    client: &TropicClient,
    admin: &mut Option<AdminClient>,
    stop: &AtomicBool,
    shutdown_requested: &AtomicBool,
    req: RpcRequest,
) -> RpcResponse {
    match req {
        RpcRequest::Submit(request) => match client.submit_request(request) {
            Ok(h) => RpcResponse::Submitted {
                id: h.id(),
                deadline_ms: h.deadline_ms(),
            },
            Err(e) => RpcResponse::Error(e),
        },
        RpcRequest::SubmitBatch(requests) => match client.submit_batch(requests) {
            Ok(hs) => RpcResponse::SubmittedBatch {
                handles: hs.iter().map(|h| (h.id(), h.deadline_ms())).collect(),
            },
            Err(e) => RpcResponse::Error(e),
        },
        RpcRequest::TryOutcome { id } => match client.handle(id).try_outcome() {
            Ok(outcome) => RpcResponse::Outcome(outcome),
            Err(e) => RpcResponse::Error(e),
        },
        RpcRequest::Wait { id, timeout_ms } => wait_sliced(client, id, timeout_ms, stop),
        RpcRequest::Record { id } => match client.txn_record(id) {
            Ok(rec) => RpcResponse::Record(rec.map(Box::new)),
            Err(e) => RpcResponse::Error(e.into()),
        },
        RpcRequest::Repair { scope, timeout_ms } => {
            let admin = admin.get_or_insert_with(|| shared.admin("rpc-admin"));
            admin_sliced(admin, &scope, timeout_ms, true, stop)
        }
        RpcRequest::Reload { scope, timeout_ms } => {
            let admin = admin.get_or_insert_with(|| shared.admin("rpc-admin"));
            admin_sliced(admin, &scope, timeout_ms, false, stop)
        }
        RpcRequest::Signal { id, signal } => {
            let admin = admin.get_or_insert_with(|| shared.admin("rpc-admin"));
            match admin.signal(id, signal) {
                Ok(()) => RpcResponse::Signaled,
                Err(e) => RpcResponse::Error(e),
            }
        }
        // Subscribe switches the connection mode and is handled by the
        // connection loop before dispatch.
        RpcRequest::Subscribe | RpcRequest::SubscribeTwin => RpcResponse::Subscribed,
        RpcRequest::Ping => RpcResponse::Pong {
            now_ms: shared.clock.now_ms(),
        },
        RpcRequest::Shutdown => {
            shutdown_requested.store(true, Ordering::SeqCst);
            RpcResponse::ShutdownAck
        }
    }
}

/// Enqueues one repair/reload, then blocks toward the caller's deadline in
/// short slices: `timeout_ms` is wire-controlled and unclamped, so a
/// stopping server must never be pinned by a remote operator's long bound.
fn admin_sliced(
    admin: &AdminClient,
    scope: &Path,
    timeout_ms: u64,
    repair: bool,
    stop: &AtomicBool,
) -> RpcResponse {
    let admin_id = match admin.enqueue_admin(scope, repair) {
        Ok(id) => id,
        Err(e) => return RpcResponse::Error(e),
    };
    let deadline = Instant::now() + Duration::from_millis(timeout_ms);
    loop {
        if stop.load(Ordering::SeqCst) {
            return RpcResponse::Error(ApiError::ShuttingDown);
        }
        // Always attempt at least one wait slice (wait_admin polls the
        // result before sleeping), so an already-finished operation beats
        // an elapsed bound — the in-process semantics.
        let slice = deadline
            .saturating_duration_since(Instant::now())
            .min(WAIT_SLICE);
        match admin.wait_admin(admin_id, slice) {
            Ok(result) => return RpcResponse::Admin(result),
            Err(ApiError::WaitTimeout { .. }) => {
                if Instant::now() >= deadline {
                    return RpcResponse::Error(ApiError::WaitTimeout { id: admin_id });
                }
            }
            Err(e) => return RpcResponse::Error(e),
        }
    }
}

/// Blocks toward the caller's deadline in short slices so a stopping
/// server is never pinned by a long remote wait.
fn wait_sliced(
    client: &TropicClient,
    id: TxnId,
    timeout_ms: u64,
    stop: &AtomicBool,
) -> RpcResponse {
    let deadline = Instant::now() + Duration::from_millis(timeout_ms);
    let handle = client.handle(id);
    loop {
        if stop.load(Ordering::SeqCst) {
            return RpcResponse::Error(ApiError::ShuttingDown);
        }
        // Always attempt at least one wait slice (wait_timeout polls the
        // outcome before sleeping), so an already-terminal transaction
        // beats an elapsed bound — the in-process semantics.
        let slice = deadline
            .saturating_duration_since(Instant::now())
            .min(WAIT_SLICE);
        match handle.wait_timeout(slice) {
            Ok(outcome) => return RpcResponse::Outcome(Some(outcome)),
            Err(ApiError::WaitTimeout { .. }) => {
                if Instant::now() >= deadline {
                    return RpcResponse::Error(ApiError::WaitTimeout { id });
                }
            }
            Err(e) => return RpcResponse::Error(e),
        }
    }
}

/// Forwards subscription events until the server stops or the client goes
/// away. A dedicated watcher session feeds the stream, exactly as the
/// in-process [`crate::api::Subscription`] (it *is* one).
fn stream_events(shared: &PlatformShared, stream: &mut TcpStream, stop: &AtomicBool) {
    let sub = shared.subscription();
    let mut probe = [0u8; 64];
    while !stop.load(Ordering::SeqCst) {
        if let Some(ev) = sub.recv_timeout(Duration::from_millis(100)) {
            if write_frame(stream, &encode_response_or_error(RpcResponse::Event(ev))).is_err() {
                return;
            }
            shared.metrics.record_rpc_events(1);
            continue;
        }
        // No event: use the idle slot to detect a departed client — a
        // closed peer reads as EOF, an alive-but-quiet one as a timeout.
        match stream.read(&mut probe) {
            Ok(0) => return,
            Ok(_) => {} // stray bytes on a stream connection are ignored
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => return,
        }
    }
}

/// Forwards digital-twin phase transitions until the server stops or the
/// client goes away, mirroring [`stream_events`] over the platform's
/// in-process [`crate::TwinFeed`].
fn stream_twin_events(shared: &PlatformShared, stream: &mut TcpStream, stop: &AtomicBool) {
    let sub = shared.twin_feed.subscribe();
    let mut probe = [0u8; 64];
    while !stop.load(Ordering::SeqCst) {
        if let Some(ev) = sub.recv_timeout(Duration::from_millis(100)) {
            if write_frame(
                stream,
                &encode_response_or_error(RpcResponse::TwinEvent(ev)),
            )
            .is_err()
            {
                return;
            }
            shared.metrics.record_rpc_events(1);
            continue;
        }
        match stream.read(&mut probe) {
            Ok(0) => return,
            Ok(_) => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => return,
        }
    }
}

// ---------------------------------------------------------------------
// Remote client.
// ---------------------------------------------------------------------

struct Conn {
    stream: TcpStream,
    reader: FrameReader,
}

/// A client to a remote TROPIC platform, mirroring
/// [`crate::TropicClient`]'s typed surface over one TCP connection.
///
/// Calls on one `RemoteClient` run in lockstep over its single connection
/// (a long [`RemoteHandle::wait`] holds the line); open one client per
/// concurrent caller — connections are cheap, and each gets its own
/// coordination session server-side. [`RemoteClient::subscribe`] opens its
/// own dedicated connection. A connection that can no longer correlate
/// replies (response timeout, damaged frame, server close) is retired and
/// transparently re-dialed on the next call.
pub struct RemoteClient {
    addr: SocketAddr,
    /// `None` between a poisoned connection and the next call's re-dial.
    io: Mutex<Option<Conn>>,
    max_frame_bytes: u32,
}

impl RemoteClient {
    /// Connects to a serving [`RpcServer`].
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ApiError> {
        let addr = addr
            .to_socket_addrs()
            .map_err(transport)?
            .next()
            .ok_or_else(|| ApiError::Transport("address resolved to nothing".into()))?;
        let conn = Self::dial(&addr)?;
        Ok(RemoteClient {
            addr,
            io: Mutex::new(Some(conn)),
            max_frame_bytes: tropic_coord::DEFAULT_MAX_FRAME_BYTES,
        })
    }

    /// Raises (or lowers) the frame-size cap this client accepts on
    /// replies and subscription events. Must cover the server's
    /// [`crate::config::RpcConfig::max_frame_bytes`] when that is raised
    /// above the default, or large replies (e.g. a transaction record with
    /// a long execution log) are rejected client-side as oversized.
    pub fn with_max_frame_bytes(mut self, max_frame_bytes: u32) -> Self {
        self.max_frame_bytes = max_frame_bytes;
        self
    }

    fn dial(addr: &SocketAddr) -> Result<Conn, ApiError> {
        let stream = TcpStream::connect_timeout(addr, CONNECT_TIMEOUT).map_err(transport)?;
        let _ = stream.set_nodelay(true);
        let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
        Ok(Conn {
            stream,
            reader: FrameReader::new(),
        })
    }

    /// The server address this client is connected to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// One framed request, one framed reply. `read_timeout` bounds how
    /// long the server may take (plus [`READ_GRACE`] slack for transport).
    ///
    /// Request/response correlation is positional (one reply per request,
    /// in order), so any failure that could leave a reply in flight — a
    /// response timeout, a damaged frame, a mid-frame close — **poisons**
    /// the connection: it is dropped, and the next call dials a fresh one.
    /// A stale reply can therefore never be read as the answer to a later
    /// call.
    fn call(&self, req: RpcRequest, read_timeout: Duration) -> Result<RpcResponse, ApiError> {
        let mut guard = self.io.lock();
        let conn = match guard.as_mut() {
            Some(conn) => conn,
            None => guard.insert(Self::dial(&self.addr)?),
        };
        let Conn { stream, reader } = conn;
        // Slice the socket timeout so the deadline loop below stays
        // responsive regardless of how long the whole call may block.
        stream
            .set_read_timeout(Some(Duration::from_millis(50)))
            .map_err(transport)?;
        if let Err(e) = write_frame(stream, &encode_request(req)?) {
            *guard = None;
            return Err(transport(e));
        }
        let deadline = Instant::now() + read_timeout + READ_GRACE;
        loop {
            // analyze:allow(blocking-under-lock): the io lock IS the line discipline — one in-flight call per connection
            match reader.read_from(stream, self.max_frame_bytes) {
                Ok(Some(payload)) => {
                    return match decode_response(&payload).map_err(ApiError::from)? {
                        RpcResponse::Error(e) => Err(e),
                        ok => Ok(ok),
                    };
                }
                Ok(None) => {
                    if Instant::now() >= deadline {
                        // The server may still answer later; this stream
                        // can no longer tell that stale reply apart from
                        // the next call's, so retire it.
                        *guard = None;
                        return Err(ApiError::Transport(
                            "timed out awaiting the RPC response".into(),
                        ));
                    }
                }
                Err(FrameError::Closed) => {
                    *guard = None;
                    return Err(ApiError::Transport("server closed the connection".into()));
                }
                Err(e @ FrameError::Oversized { .. }) => {
                    // Permanent, mirroring the server's classification: a
                    // reply past this client's cap fails identically on
                    // every retry until `with_max_frame_bytes` is raised.
                    *guard = None;
                    return Err(ApiError::InvalidRequest(e.to_string()));
                }
                Err(e) => {
                    *guard = None;
                    return Err(transport(e));
                }
            }
        }
    }

    /// Submits a typed request; the server assigns the transaction id.
    /// Mirrors [`crate::TropicClient::submit_request`].
    pub fn submit_request(&self, request: TxnRequest) -> Result<RemoteHandle<'_>, ApiError> {
        match self.call(RpcRequest::Submit(request), CALL_TIMEOUT)? {
            RpcResponse::Submitted { id, deadline_ms } => Ok(RemoteHandle {
                client: self,
                id,
                deadline_ms,
            }),
            other => Err(unexpected(&other)),
        }
    }

    /// Submits several requests as one atomic enqueue. Mirrors
    /// [`crate::TropicClient::submit_batch`].
    pub fn submit_batch(
        &self,
        requests: Vec<TxnRequest>,
    ) -> Result<Vec<RemoteHandle<'_>>, ApiError> {
        if requests.is_empty() {
            return Ok(Vec::new());
        }
        match self.call(RpcRequest::SubmitBatch(requests), CALL_TIMEOUT)? {
            RpcResponse::SubmittedBatch { handles } => Ok(handles
                .into_iter()
                .map(|(id, deadline_ms)| RemoteHandle {
                    client: self,
                    id,
                    deadline_ms,
                })
                .collect()),
            other => Err(unexpected(&other)),
        }
    }

    /// Re-attaches a handle to an already-submitted transaction id.
    pub fn handle(&self, id: TxnId) -> RemoteHandle<'_> {
        RemoteHandle {
            client: self,
            id,
            deadline_ms: None,
        }
    }

    /// Reads the full durable record of a transaction, if still retained.
    pub fn txn_record(&self, id: TxnId) -> Result<Option<TxnRecord>, ApiError> {
        match self.call(RpcRequest::Record { id }, CALL_TIMEOUT)? {
            RpcResponse::Record(rec) => Ok(rec.map(|b| *b)),
            other => Err(unexpected(&other)),
        }
    }

    /// Liveness probe; returns the platform clock (ms) — also how remote
    /// callers compute absolute deadlines without a local platform clock.
    pub fn ping(&self) -> Result<u64, ApiError> {
        match self.call(RpcRequest::Ping, CALL_TIMEOUT)? {
            RpcResponse::Pong { now_ms } => Ok(now_ms),
            other => Err(unexpected(&other)),
        }
    }

    /// Opens a streaming subscription to transaction lifecycle events on a
    /// dedicated connection. Mirrors [`crate::TropicClient::subscribe`].
    pub fn subscribe(&self) -> Result<RemoteSubscription, ApiError> {
        RemoteSubscription::open(self.addr, self.max_frame_bytes, false)
    }

    /// Opens a streaming subscription to digital-twin phase transitions
    /// ([`TwinEvent`]) on a dedicated connection. Read the feed with
    /// [`RemoteSubscription::recv_twin_timeout`] /
    /// [`RemoteSubscription::drain_twin`].
    pub fn subscribe_twin(&self) -> Result<RemoteSubscription, ApiError> {
        RemoteSubscription::open(self.addr, self.max_frame_bytes, true)
    }

    /// The operator plane, sharing this client's connection. Mirrors
    /// [`crate::Tropic::admin`].
    pub fn admin(&self) -> RemoteAdmin<'_> {
        RemoteAdmin { client: self }
    }

    /// Asks the serving process to shut down (see
    /// [`RpcServer::shutdown_requested`]).
    pub fn shutdown_server(&self) -> Result<(), ApiError> {
        match self.call(RpcRequest::Shutdown, CALL_TIMEOUT)? {
            RpcResponse::ShutdownAck => Ok(()),
            other => Err(unexpected(&other)),
        }
    }
}

fn unexpected(resp: &RpcResponse) -> ApiError {
    ApiError::Transport(format!("protocol violation: unexpected response {resp:?}"))
}

/// A handle to one transaction submitted over the wire, mirroring
/// [`crate::api::TxnHandle`]. Outcome reads follow idempotency aliases
/// transparently (the server resolves them).
pub struct RemoteHandle<'c> {
    client: &'c RemoteClient,
    id: TxnId,
    deadline_ms: Option<u64>,
}

impl RemoteHandle<'_> {
    /// The server-assigned transaction id.
    pub fn id(&self) -> TxnId {
        self.id
    }

    /// The admission deadline resolved at submission (platform clock, ms).
    pub fn deadline_ms(&self) -> Option<u64> {
        self.deadline_ms
    }

    /// Non-blocking outcome poll: `Ok(Some(..))` once terminal.
    pub fn try_outcome(&self) -> Result<Option<TxnOutcome>, ApiError> {
        match self
            .client
            .call(RpcRequest::TryOutcome { id: self.id }, CALL_TIMEOUT)?
        {
            RpcResponse::Outcome(outcome) => Ok(outcome),
            other => Err(unexpected(&other)),
        }
    }

    /// Blocks until the transaction reaches a terminal state, bounded by
    /// the request's deadline (fetched against the platform clock via
    /// [`RemoteClient::ping`]) or 60 seconds when none was set.
    pub fn wait(&self) -> Result<TxnOutcome, ApiError> {
        let timeout = match self.deadline_ms {
            Some(d) => {
                let now = self.client.ping()?;
                Duration::from_millis(d.saturating_sub(now).max(1))
            }
            None => DEFAULT_WAIT,
        };
        self.wait_timeout(timeout)
    }

    /// [`RemoteHandle::wait`] with an explicit bound. The server blocks on
    /// the same watch-driven wait the in-process handle uses.
    pub fn wait_timeout(&self, timeout: Duration) -> Result<TxnOutcome, ApiError> {
        let timeout_ms = timeout.as_millis().min(u64::MAX as u128) as u64;
        let req = RpcRequest::Wait {
            id: self.id,
            timeout_ms,
        };
        match self.client.call(req, timeout)? {
            RpcResponse::Outcome(Some(outcome)) => Ok(outcome),
            RpcResponse::Outcome(None) => Err(ApiError::WaitTimeout { id: self.id }),
            other => Err(unexpected(&other)),
        }
    }
}

/// The operator plane over the wire, mirroring [`crate::api::AdminClient`].
pub struct RemoteAdmin<'c> {
    client: &'c RemoteClient,
}

impl RemoteAdmin<'_> {
    /// Runs `repair` over `scope`, blocking up to `timeout` for the result.
    pub fn repair(&self, scope: &Path, timeout: Duration) -> Result<AdminResult, ApiError> {
        let req = RpcRequest::Repair {
            scope: scope.clone(),
            timeout_ms: timeout.as_millis().min(u64::MAX as u128) as u64,
        };
        match self.client.call(req, timeout)? {
            RpcResponse::Admin(result) => Ok(result),
            other => Err(unexpected(&other)),
        }
    }

    /// Runs `reload` over `scope`, blocking up to `timeout` for the result.
    pub fn reload(&self, scope: &Path, timeout: Duration) -> Result<AdminResult, ApiError> {
        let req = RpcRequest::Reload {
            scope: scope.clone(),
            timeout_ms: timeout.as_millis().min(u64::MAX as u128) as u64,
        };
        match self.client.call(req, timeout)? {
            RpcResponse::Admin(result) => Ok(result),
            other => Err(unexpected(&other)),
        }
    }

    /// Sends a TERM or KILL signal to a transaction.
    pub fn signal(&self, id: TxnId, signal: Signal) -> Result<(), ApiError> {
        match self
            .client
            .call(RpcRequest::Signal { id, signal }, CALL_TIMEOUT)?
        {
            RpcResponse::Signaled => Ok(()),
            other => Err(unexpected(&other)),
        }
    }
}

/// A streaming feed from a remote platform: transaction lifecycle events
/// ([`TxnEvent`], via [`RemoteClient::subscribe`]) or digital-twin phase
/// transitions ([`TwinEvent`], via [`RemoteClient::subscribe_twin`]) —
/// the subscription filter is chosen at open time. Runs on its own
/// connection; dropping it closes the socket and ends the feed.
pub struct RemoteSubscription {
    rx: mpsc::Receiver<TxnEvent>,
    twin_rx: mpsc::Receiver<TwinEvent>,
    stream: TcpStream,
    thread: Option<JoinHandle<()>>,
}

impl RemoteSubscription {
    fn open(addr: SocketAddr, max_frame_bytes: u32, twin: bool) -> Result<Self, ApiError> {
        let mut stream = TcpStream::connect_timeout(&addr, CONNECT_TIMEOUT).map_err(transport)?;
        let _ = stream.set_nodelay(true);
        let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
        stream
            .set_read_timeout(Some(Duration::from_millis(50)))
            .map_err(transport)?;
        let subscribe = if twin {
            RpcRequest::SubscribeTwin
        } else {
            RpcRequest::Subscribe
        };
        write_frame(&mut stream, &encode_request(subscribe)?).map_err(transport)?;
        // Wait for the mode-switch ack before handing the socket to the
        // reader thread, so connect errors surface typed right here.
        let mut reader = FrameReader::new();
        let deadline = Instant::now() + CALL_TIMEOUT;
        loop {
            match reader.read_from(&mut stream, max_frame_bytes) {
                Ok(Some(payload)) => match decode_response(&payload).map_err(ApiError::from)? {
                    RpcResponse::Subscribed => break,
                    RpcResponse::Error(e) => return Err(e),
                    other => return Err(unexpected(&other)),
                },
                Ok(None) => {
                    if Instant::now() >= deadline {
                        return Err(ApiError::Transport(
                            "timed out awaiting the subscription ack".into(),
                        ));
                    }
                }
                Err(e) => return Err(transport(e)),
            }
        }
        let (tx, rx) = mpsc::channel();
        let (twin_tx, twin_rx) = mpsc::channel();
        let thread = {
            let mut stream = stream.try_clone().map_err(transport)?;
            std::thread::Builder::new()
                .name("tropic-remote-subscriber".into())
                .spawn(move || {
                    loop {
                        match reader.read_from(&mut stream, max_frame_bytes) {
                            Ok(Some(payload)) => {
                                // Anything that is not a decodable event is
                                // tolerated and skipped: the stream must
                                // survive frames a newer server might add.
                                let delivered = match decode_response(&payload) {
                                    Ok(RpcResponse::Event(ev)) => tx.send(ev).is_ok(),
                                    Ok(RpcResponse::TwinEvent(ev)) => twin_tx.send(ev).is_ok(),
                                    _ => true,
                                };
                                if !delivered {
                                    return; // receiver dropped
                                }
                            }
                            Ok(None) => {}    // idle; keep listening
                            Err(_) => return, // closed or damaged: end the feed
                        }
                    }
                })
                .map_err(transport)?
        };
        Ok(RemoteSubscription {
            rx,
            twin_rx,
            stream,
            thread: Some(thread),
        })
    }

    /// Returns the next buffered event without blocking.
    pub fn try_recv(&self) -> Option<TxnEvent> {
        self.rx.try_recv().ok()
    }

    /// Blocks up to `timeout` for the next event.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<TxnEvent> {
        self.rx.recv_timeout(timeout).ok()
    }

    /// Drains every currently-buffered event.
    pub fn drain(&self) -> Vec<TxnEvent> {
        let mut out = Vec::new();
        while let Some(ev) = self.try_recv() {
            out.push(ev);
        }
        out
    }

    /// Returns the next buffered twin event without blocking (twin
    /// subscriptions only).
    pub fn try_recv_twin(&self) -> Option<TwinEvent> {
        self.twin_rx.try_recv().ok()
    }

    /// Blocks up to `timeout` for the next twin event (twin subscriptions
    /// only).
    pub fn recv_twin_timeout(&self, timeout: Duration) -> Option<TwinEvent> {
        self.twin_rx.recv_timeout(timeout).ok()
    }

    /// Drains every currently-buffered twin event.
    pub fn drain_twin(&self) -> Vec<TwinEvent> {
        let mut out = Vec::new();
        while let Some(ev) = self.try_recv_twin() {
            out.push(ev);
        }
        out
    }

    /// Whether the feed can still deliver new events. `false` once the
    /// server closed the stream (shutdown, damaged frame): buffered events
    /// remain readable, but nothing further will arrive — resubscribe via
    /// [`RemoteClient::subscribe`] to continue.
    pub fn is_live(&self) -> bool {
        self.thread.as_ref().is_some_and(|t| !t.is_finished())
    }
}

impl Drop for RemoteSubscription {
    fn drop(&mut self) {
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_envelope_roundtrip() {
        let bytes = encode_request(RpcRequest::Wait {
            id: 7,
            timeout_ms: 1_500,
        })
        .unwrap();
        match decode_request(&bytes).unwrap() {
            RpcRequest::Wait { id, timeout_ms } => {
                assert_eq!((id, timeout_ms), (7, 1_500));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn response_envelope_roundtrip() {
        let bytes = encode_response(RpcResponse::Submitted {
            id: 9,
            deadline_ms: Some(42),
        })
        .unwrap();
        match decode_response(&bytes).unwrap() {
            RpcResponse::Submitted { id, deadline_ms } => {
                assert_eq!((id, deadline_ms), (9, Some(42)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn future_version_rejected_even_with_unparseable_payload() {
        let bytes = br#"{"v":9,"msg":{"HologramRequest":{"x":1}}}"#;
        assert!(matches!(
            decode_request(bytes),
            Err(WireError::UnsupportedVersion(9))
        ));
        assert!(matches!(
            decode_response(bytes),
            Err(WireError::UnsupportedVersion(9))
        ));
    }

    #[test]
    fn unversioned_payload_is_malformed_on_the_socket() {
        // The queue codec accepts bare legacy messages; the socket protocol
        // was born versioned, so an unversioned payload is rejected.
        let bytes = br#"{"Ping":null}"#;
        assert!(matches!(
            decode_request(bytes),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn error_response_preserves_retryable_partition() {
        for (err, retryable) in [
            (ApiError::WaitTimeout { id: 3 }, true),
            (ApiError::Transport("reset".into()), true),
            (ApiError::UnsupportedWireVersion { version: 8 }, false),
            (ApiError::UnknownProcedure("nope".into()), false),
        ] {
            let bytes = encode_response(RpcResponse::Error(err.clone())).unwrap();
            match decode_response(&bytes).unwrap() {
                RpcResponse::Error(back) => {
                    assert_eq!(back, err);
                    assert_eq!(back.retryable(), retryable);
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }
}

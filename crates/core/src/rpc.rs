//! Network RPC frontend: the typed client API over a socket.
//!
//! TROPIC's controller is a shared service clients reach over the network
//! (paper §3), not a library they link. This module puts the PR 4 client
//! surface on a TCP socket:
//!
//! * [`RpcServer`] — an event-driven socket server started with
//!   [`crate::Tropic::serve_rpc`]. One **reactor** thread runs a
//!   readiness-polling loop (`poll(2)` via the vendored `polling` shim)
//!   over every nonblocking connection; each connection is a small state
//!   machine around a [`FrameReader`] with buffered frame writes. Decoded
//!   requests are handed to a fixed dispatch pool (blocking calls get
//!   transient threads), and replies flow back to the reactor over a
//!   completion channel plus a self-pipe wake — so 10k idle subscriptions
//!   cost file descriptors, not threads (Welsh et al., SEDA, SOSP 2001).
//!   Subscription fan-out encodes each event **once** into a shared
//!   [`bytes::Bytes`] frame and clones the handle onto every subscriber's
//!   outbound queue.
//! * [`RemoteClient`] — a drop-in mirror of the in-process builder API:
//!   [`RemoteClient::submit_request`], [`RemoteClient::submit_batch`],
//!   [`RemoteHandle::wait`]/[`RemoteHandle::try_outcome`],
//!   [`RemoteClient::subscribe`] streaming [`TxnEvent`]s, and the operator
//!   plane via [`RemoteClient::admin`].
//!
//! When the coordination service carries observer replicas, the streaming
//! fan-out is lease-gated: if the fan-out observer's staleness lease
//! lapses (quorum lost), every subscription closes with the typed
//! [`ApiError::LeaseExpired`] — distinguishable from the
//! [`ApiError::ShuttingDown`] a planned stop sends — and new
//! subscriptions are refused until the lease heals. Read the close reason
//! with [`RemoteSubscription::close_reason`].
//!
//! ## Wire format
//!
//! Every message is one frame of the length-prefixed CRC-32 stream codec
//! the write-ahead log already uses on disk
//! ([`tropic_coord::wal::frame`]): `[len: u32 LE][crc32: u32 LE][payload]`.
//! The payload is a versioned JSON envelope `{"v": 1, "msg": ...}` — the
//! same `v` and bump policy as [`crate::msg::Envelope`] ([`WIRE_VERSION`]).
//! The version is probed **at the frame boundary, before the payload is
//! parsed**: a future-version envelope is rejected with the typed
//! [`ApiError::UnsupportedWireVersion`], never misparsed. Partial reads
//! reassemble; corrupt CRCs and oversized length prefixes fail typed and
//! close the connection (the stream is unsynchronized past them).
//!
//! [`ApiError`] crosses the wire as itself — a remote caller sees the same
//! variants, and the same [`ApiError::retryable`] partition, as an
//! in-process one. Transport-level failures surface as the retryable
//! [`ApiError::Transport`].

#![warn(missing_docs)]

use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::io::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bytes::Bytes;
use parking_lot::Mutex;
use polling::{poll, PollFd, POLLIN, POLLOUT};
use serde::{Deserialize, Serialize};
use tropic_coord::{write_frame, FrameError, FrameReader};
use tropic_model::Path;

use crate::api::{AdminClient, ApiError, TxnEvent, TxnRequest};
use crate::config::RpcConfig;
use crate::msg::{wire_version_of, AdminResult, Signal, WireError, WIRE_VERSION};
use crate::platform::{PlatformShared, TropicClient};
use crate::twin::TwinEvent;
use crate::txn::{TxnId, TxnOutcome, TxnRecord};

/// Bound on a connect attempt.
const CONNECT_TIMEOUT: Duration = Duration::from_secs(10);
/// Response bound for calls the server answers without blocking.
const CALL_TIMEOUT: Duration = Duration::from_secs(30);
/// Extra slack granted on top of a blocking call's own timeout before the
/// client declares the transport dead.
const READ_GRACE: Duration = Duration::from_secs(10);
/// Fallback wait bound for remote handles without a deadline (mirrors the
/// in-process default).
const DEFAULT_WAIT: Duration = Duration::from_secs(60);
/// Server-side slice for blocking waits, so shutdown is never delayed by a
/// long-waiting remote caller.
const WAIT_SLICE: Duration = Duration::from_millis(250);
/// Bound on any single socket write: a peer that stopped reading (full
/// kernel send buffer) fails the write instead of pinning the thread.
const WRITE_TIMEOUT: Duration = Duration::from_secs(10);

// ---------------------------------------------------------------------
// Wire messages.
// ---------------------------------------------------------------------

/// One client→server call. `Submit`/`SubmitBatch` carry the *same*
/// [`TxnRequest`] the in-process builder produces.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum RpcRequest {
    /// Submit one request; the server assigns the transaction id.
    Submit(TxnRequest),
    /// Submit several requests as one atomic enqueue.
    SubmitBatch(Vec<TxnRequest>),
    /// Non-blocking outcome poll.
    TryOutcome {
        /// The transaction.
        id: TxnId,
    },
    /// Block server-side until the transaction finalizes or `timeout_ms`
    /// passes.
    Wait {
        /// The transaction.
        id: TxnId,
        /// Wait bound in milliseconds.
        timeout_ms: u64,
    },
    /// Fetch the full durable transaction record.
    Record {
        /// The transaction.
        id: TxnId,
    },
    /// Operator plane: reconcile physical state toward the logical layer.
    Repair {
        /// Subtree to reconcile.
        scope: Path,
        /// Result-wait bound in milliseconds.
        timeout_ms: u64,
    },
    /// Operator plane: replace the logical subtree with retrieved state.
    Reload {
        /// Subtree to reload.
        scope: Path,
        /// Result-wait bound in milliseconds.
        timeout_ms: u64,
    },
    /// Operator plane: signal an unresponsive transaction.
    Signal {
        /// The transaction.
        id: TxnId,
        /// TERM or KILL.
        signal: Signal,
    },
    /// Switch this connection into a one-way [`TxnEvent`] stream.
    Subscribe,
    /// Switch this connection into a one-way [`TwinEvent`] stream (digital
    /// twin phase transitions). Additive in wire version 1: pre-twin
    /// servers reject the frame as malformed without dropping the
    /// connection.
    SubscribeTwin,
    /// Liveness probe; the reply carries the platform clock.
    Ping,
    /// Ask the serving process to shut down (used by operational tooling
    /// and the CI smoke test for clean teardown).
    Shutdown,
}

/// One server→client reply, or a streamed subscription event.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum RpcResponse {
    /// A submission was enqueued.
    Submitted {
        /// Server-assigned transaction id.
        id: TxnId,
        /// Resolved admission deadline (platform clock, ms).
        deadline_ms: Option<u64>,
    },
    /// A batch was enqueued atomically.
    SubmittedBatch {
        /// `(id, deadline_ms)` per request, in submission order.
        handles: Vec<(TxnId, Option<u64>)>,
    },
    /// Outcome poll result: `None` while still in flight.
    Outcome(Option<TxnOutcome>),
    /// The durable transaction record, if still retained.
    Record(Option<Box<TxnRecord>>),
    /// An administrative operation's result.
    Admin(AdminResult),
    /// A signal was enqueued.
    Signaled,
    /// The connection is now an event stream.
    Subscribed,
    /// One streamed lifecycle event.
    Event(TxnEvent),
    /// One streamed digital-twin phase transition. Additive in wire
    /// version 1: pre-twin subscribers skip the unknown frame.
    TwinEvent(TwinEvent),
    /// Liveness reply.
    Pong {
        /// Platform clock (ms) when the server answered.
        now_ms: u64,
    },
    /// The server acknowledged a shutdown request.
    ShutdownAck,
    /// The call failed; the payload preserves the retryable partition.
    Error(ApiError),
}

#[derive(Serialize, Deserialize)]
struct RequestEnvelope {
    v: u32,
    msg: RpcRequest,
}

#[derive(Serialize, Deserialize)]
struct ResponseEnvelope {
    v: u32,
    msg: RpcResponse,
}

/// Encodes a call in the current versioned envelope. Fails (as
/// [`ApiError::InvalidRequest`]) only if the request itself cannot be
/// serialized, which a well-formed [`RpcRequest`] never is.
pub fn encode_request(msg: RpcRequest) -> Result<Vec<u8>, ApiError> {
    serde_json::to_vec(&RequestEnvelope {
        v: WIRE_VERSION,
        msg,
    })
    .map_err(|e| ApiError::InvalidRequest(format!("unserializable request: {e}")))
}

/// Encodes a reply in the current versioned envelope.
pub fn encode_response(msg: RpcResponse) -> Result<Vec<u8>, ApiError> {
    serde_json::to_vec(&ResponseEnvelope {
        v: WIRE_VERSION,
        msg,
    })
    .map_err(|e| ApiError::Transport(format!("unserializable response: {e}")))
}

/// Server-side encoding that cannot fail: an unserializable response
/// degrades to an error envelope (and, should even that fail, to a
/// hand-built one whose shape needs no serializer), so the client sees a
/// well-formed error frame instead of a silently dropped connection.
fn encode_response_or_error(msg: RpcResponse) -> Vec<u8> {
    match encode_response(msg) {
        Ok(bytes) => bytes,
        Err(e) => encode_response(RpcResponse::Error(e)).unwrap_or_else(|_| {
            format!(
                r#"{{"v":{WIRE_VERSION},"msg":{{"Error":{{"Transport":"response encoding failed"}}}}}}"#
            )
            .into_bytes()
        }),
    }
}

/// Version gate shared by both decode directions: probed before the
/// payload is parsed, so a future-version envelope whose payload this
/// build cannot even represent still fails with the version error. Unlike
/// the queue codec there is no bare legacy fallback — the socket protocol
/// was born versioned, so an unversioned payload is malformed.
fn check_version(bytes: &[u8]) -> Result<(), WireError> {
    match wire_version_of(bytes) {
        Some(v) if v > WIRE_VERSION => Err(WireError::UnsupportedVersion(v)),
        Some(_) => Ok(()),
        None => Err(WireError::Malformed("missing wire version field".into())),
    }
}

/// Decodes a call, rejecting future versions at the boundary.
pub fn decode_request(bytes: &[u8]) -> Result<RpcRequest, WireError> {
    check_version(bytes)?;
    serde_json::from_slice::<RequestEnvelope>(bytes)
        .map(|e| e.msg)
        .map_err(|e| WireError::Malformed(e.to_string()))
}

/// Decodes a reply, rejecting future versions at the boundary.
pub fn decode_response(bytes: &[u8]) -> Result<RpcResponse, WireError> {
    check_version(bytes)?;
    serde_json::from_slice::<ResponseEnvelope>(bytes)
        .map(|e| e.msg)
        .map_err(|e| WireError::Malformed(e.to_string()))
}

fn transport(e: impl std::fmt::Display) -> ApiError {
    ApiError::Transport(e.to_string())
}

// ---------------------------------------------------------------------
// Server: the readiness-polling reactor.
// ---------------------------------------------------------------------

/// How often the reactor re-validates the fan-out observer's staleness
/// lease (only when the coordination service carries observer replicas).
const LEASE_CHECK_PERIOD: Duration = Duration::from_millis(250);
/// Cap on one connection's queued outbound bytes. A subscriber that stops
/// reading while events keep flowing is a slow consumer; past this bound
/// its connection is closed rather than ballooning server memory.
const OUTBOUND_CAP_BYTES: usize = 16 << 20;
/// Bound on the per-connection blocking flush performed at teardown, so
/// the final typed frames (`ShuttingDown`, in-flight replies) reach peers
/// without a stalled one pinning shutdown.
const TEARDOWN_FLUSH_TIMEOUT: Duration = Duration::from_secs(2);

/// Which one-way event feed a streaming connection subscribed to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Feed {
    /// Transaction lifecycle events ([`TxnEvent`]).
    Txn,
    /// Digital-twin phase transitions ([`TwinEvent`]).
    Twin,
}

/// What a connection currently is: a request/reply line, or (after a
/// `Subscribe`/`SubscribeTwin` mode switch) a one-way event stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ConnMode {
    Request,
    Stream(Feed),
}

/// Per-connection state machine: a nonblocking socket, the incremental
/// frame reassembler, and a queue of encoded outbound frames. The queue
/// holds shared [`Bytes`] handles — broadcast fan-out encodes each event
/// once and clones the handle here per subscriber.
struct ConnState {
    stream: TcpStream,
    reader: FrameReader,
    /// Encoded frames awaiting the socket; `out_pos` is the write offset
    /// into the front frame, `out_bytes` the queued total.
    outbound: VecDeque<Bytes>,
    out_pos: usize,
    out_bytes: usize,
    mode: ConnMode,
    /// One request dispatched at a time per connection: replies correlate
    /// positionally, so the next pending request waits for the current
    /// dispatch's completion.
    inflight: bool,
    /// Requests decoded but not yet dispatched (a pipelining client).
    pending: VecDeque<RpcRequest>,
    /// Close once `outbound` drains — set after a typed reject or lease
    /// expiry whose error frame must still reach the peer.
    close_after_flush: bool,
    dead: bool,
}

impl ConnState {
    fn new(stream: TcpStream) -> Self {
        ConnState {
            stream,
            reader: FrameReader::new(),
            outbound: VecDeque::new(),
            out_pos: 0,
            out_bytes: 0,
            mode: ConnMode::Request,
            inflight: false,
            pending: VecDeque::new(),
            close_after_flush: false,
            dead: false,
        }
    }

    fn enqueue(&mut self, frame: Bytes) {
        if self.out_bytes.saturating_add(frame.len()) > OUTBOUND_CAP_BYTES {
            self.dead = true;
            return;
        }
        self.out_bytes += frame.len();
        self.outbound.push_back(frame);
    }

    /// Writes queued frames until the socket would block or the queue
    /// drains; a write failure (or a drained queue under
    /// `close_after_flush`) retires the connection.
    fn flush(&mut self) {
        while let Some(front) = self.outbound.front() {
            let unsent = front.get(self.out_pos..).unwrap_or_default();
            match self.stream.write(unsent) {
                Ok(0) => {
                    self.dead = true;
                    return;
                }
                Ok(n) => {
                    self.out_pos += n;
                    if self.out_pos == front.len() {
                        let len = front.len();
                        self.out_pos = 0;
                        self.out_bytes -= len;
                        self.outbound.pop_front();
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.dead = true;
                    return;
                }
            }
        }
        if self.close_after_flush {
            self.dead = true;
        }
    }

    fn wants_pollout(&self) -> bool {
        !self.outbound.is_empty()
    }
}

/// Encodes a reply and frames it into one shared, reference-counted
/// buffer.
fn frame_response(resp: RpcResponse) -> Bytes {
    let payload = encode_response_or_error(resp);
    let mut framed = Vec::with_capacity(payload.len() + 8);
    // Writing into a Vec cannot fail.
    let _ = write_frame(&mut framed, &payload);
    Bytes::copy_from_slice(&framed)
}

/// A completion flowing back into the reactor from a dispatch worker, a
/// transient wait thread, or an event-feed pump.
enum Wake {
    /// The reply to one dispatched request, for one connection.
    Reply { token: u64, frame: Bytes },
    /// One event frame, encoded once, for every subscriber of `feed`.
    Broadcast { feed: Feed, frame: Bytes },
}

/// Completion-channel handle handed to dispatch workers and feed pumps: a
/// message plus one self-pipe byte, so a sleeping `poll(2)` wakes
/// immediately instead of at the next timeout tick.
#[derive(Clone)]
struct DoneTx {
    tx: crossbeam::channel::Sender<Wake>,
    pipe: Arc<UnixStream>,
}

impl DoneTx {
    fn send(&self, wake: Wake) {
        let _ = self.tx.send(wake);
        // A full (nonblocking) pipe already guarantees a pending wake.
        let _ = (&*self.pipe).write(&[1u8]);
    }
}

/// One queued unit of pool dispatch.
struct Job {
    token: u64,
    req: RpcRequest,
}

/// Calls that block toward a caller-controlled deadline. The reactor runs
/// these on transient threads so a herd of long waits can never occupy
/// the fixed dispatch pool.
fn is_blocking(req: &RpcRequest) -> bool {
    matches!(
        req,
        RpcRequest::Wait { .. } | RpcRequest::Repair { .. } | RpcRequest::Reload { .. }
    )
}

/// The listening RPC frontend. Dropping (or [`RpcServer::stop`]ping) it
/// wakes the reactor, which closes every connection and joins the
/// dispatch pool; stop the server **before** shutting the platform down
/// so in-flight dispatches finish against a live controller.
pub struct RpcServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    shutdown_requested: Arc<AtomicBool>,
    reactor: Option<JoinHandle<()>>,
}

impl RpcServer {
    pub(crate) fn start(shared: PlatformShared, cfg: RpcConfig) -> Result<Self, ApiError> {
        let listener = TcpListener::bind(&cfg.addr).map_err(transport)?;
        listener.set_nonblocking(true).map_err(transport)?;
        let addr = listener.local_addr().map_err(transport)?;
        let stop = Arc::new(AtomicBool::new(false));
        let shutdown_requested = Arc::new(AtomicBool::new(false));
        // The self-pipe: completions write one byte to the tx end so the
        // reactor's poll(2) wakes immediately.
        let (wake_tx, wake_rx) = UnixStream::pair().map_err(transport)?;
        wake_tx.set_nonblocking(true).map_err(transport)?;
        wake_rx.set_nonblocking(true).map_err(transport)?;
        let reactor = {
            let stop = Arc::clone(&stop);
            let shutdown_requested = Arc::clone(&shutdown_requested);
            std::thread::Builder::new()
                .name("tropic-rpc-reactor".into())
                .spawn(move || {
                    Reactor::new(
                        listener,
                        shared,
                        cfg,
                        stop,
                        shutdown_requested,
                        wake_tx,
                        wake_rx,
                    )
                    .run()
                })
                .map_err(transport)?
        };
        Ok(RpcServer {
            addr,
            stop,
            shutdown_requested,
            reactor: Some(reactor),
        })
    }

    /// The bound address (the real port when configured with port `0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether a client asked this serving process to shut down via
    /// [`RpcRequest::Shutdown`]. The server keeps serving — the hosting
    /// process decides when to act on the request.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown_requested.load(Ordering::SeqCst)
    }

    /// Stops the reactor: in-flight dispatches complete, streaming peers
    /// receive a typed [`ApiError::ShuttingDown`] frame, every socket
    /// closes, and the dispatch pool joins.
    pub fn stop(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.reactor.take() {
            let _ = t.join();
        }
    }
}

impl Drop for RpcServer {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

/// The event loop. One thread owns every connection; readiness comes from
/// `poll(2)` over the listener, the self-pipe, and each nonblocking
/// socket. Work that can block — coordination submits, waits, admin calls
/// — leaves the loop through the dispatch pool or a transient thread and
/// returns as a [`Wake`] completion.
struct Reactor {
    listener: TcpListener,
    shared: PlatformShared,
    cfg: RpcConfig,
    stop: Arc<AtomicBool>,
    shutdown_requested: Arc<AtomicBool>,
    conns: HashMap<u64, ConnState>,
    next_token: u64,
    wake_rx: UnixStream,
    done_rx: crossbeam::channel::Receiver<Wake>,
    done: DoneTx,
    /// `None` once teardown closes the job queue.
    jobs_tx: Option<crossbeam::channel::Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    /// Transient threads serving blocking calls; pruned as they finish.
    waiters: Vec<JoinHandle<()>>,
    waiter_seq: u64,
    /// Lazily-started event-feed pumps (txn, twin).
    pumps: Vec<JoinHandle<()>>,
    pump_started: (bool, bool),
    /// The observer replica whose staleness lease gates streaming fan-out
    /// (the first one, when the coordination service carries any).
    lease_observer: Option<usize>,
    lease_ok: bool,
    last_lease_check: Instant,
}

impl Reactor {
    #[allow(clippy::too_many_arguments)]
    fn new(
        listener: TcpListener,
        shared: PlatformShared,
        cfg: RpcConfig,
        stop: Arc<AtomicBool>,
        shutdown_requested: Arc<AtomicBool>,
        wake_tx: UnixStream,
        wake_rx: UnixStream,
    ) -> Self {
        let (done_tx, done_rx) = crossbeam::channel::unbounded();
        let done = DoneTx {
            tx: done_tx,
            pipe: Arc::new(wake_tx),
        };
        let (jobs_tx, jobs_rx) = crossbeam::channel::unbounded::<Job>();
        let mut workers = Vec::new();
        for idx in 0..cfg.dispatch_threads.max(1) {
            let shared = shared.clone();
            let jobs = jobs_rx.clone();
            let done = done.clone();
            let stop = Arc::clone(&stop);
            let shutdown_requested = Arc::clone(&shutdown_requested);
            if let Ok(h) = std::thread::Builder::new()
                .name(format!("tropic-rpc-pool-{idx}"))
                .spawn(move || worker_loop(shared, idx, jobs, done, stop, shutdown_requested))
            {
                workers.push(h);
            }
        }
        let lease_observer = shared.coord.observer_ids().first().copied();
        Reactor {
            listener,
            shared,
            cfg,
            stop,
            shutdown_requested,
            conns: HashMap::new(),
            next_token: 0,
            wake_rx,
            done_rx,
            done,
            jobs_tx: Some(jobs_tx),
            workers,
            waiters: Vec::new(),
            waiter_seq: 0,
            pumps: Vec::new(),
            pump_started: (false, false),
            lease_observer,
            lease_ok: true,
            last_lease_check: Instant::now(),
        }
    }

    fn run(mut self) {
        let poll_ms = self.cfg.poll_ms.clamp(1, 1_000) as i32;
        while !self.stop.load(Ordering::SeqCst) {
            let (mut fds, tokens) = self.build_pollfds();
            let _ = poll(&mut fds, poll_ms);
            self.drain_wake_pipe();
            self.drain_completions();
            if fds.first().is_some_and(PollFd::readable) {
                self.accept_ready();
            }
            for (fd, &token) in fds.iter().skip(2).zip(&tokens) {
                if fd.errored() {
                    if let Some(c) = self.conns.get_mut(&token) {
                        c.dead = true;
                    }
                    continue;
                }
                if fd.writable() {
                    if let Some(c) = self.conns.get_mut(&token) {
                        c.flush();
                    }
                }
                if fd.readable() {
                    self.read_conn(token);
                }
            }
            self.check_lease();
            self.conns.retain(|_, c| !c.dead);
        }
        self.teardown();
    }

    /// One poll set per iteration: `[0]` the listener, `[1]` the wake
    /// pipe, then every connection (write-interest only while its
    /// outbound queue is nonempty). `tokens[i]` maps slot `i + 2` back to
    /// its connection.
    fn build_pollfds(&self) -> (Vec<PollFd>, Vec<u64>) {
        let mut fds = Vec::with_capacity(self.conns.len() + 2);
        fds.push(PollFd::new(self.listener.as_raw_fd(), POLLIN));
        fds.push(PollFd::new(self.wake_rx.as_raw_fd(), POLLIN));
        let mut tokens = Vec::with_capacity(self.conns.len());
        for (&token, conn) in &self.conns {
            let mut interest = POLLIN;
            if conn.wants_pollout() {
                interest |= POLLOUT;
            }
            fds.push(PollFd::new(conn.stream.as_raw_fd(), interest));
            tokens.push(token);
        }
        (fds, tokens)
    }

    fn drain_wake_pipe(&mut self) {
        let mut buf = [0u8; 64];
        loop {
            match (&self.wake_rx).read(&mut buf) {
                Ok(0) => return,
                Ok(_) => {}
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return,
            }
        }
    }

    fn drain_completions(&mut self) {
        while let Ok(wake) = self.done_rx.try_recv() {
            match wake {
                Wake::Reply { token, frame } => {
                    if let Some(conn) = self.conns.get_mut(&token) {
                        conn.inflight = false;
                        conn.enqueue(frame);
                        conn.flush();
                    }
                    self.pump_dispatch(token);
                }
                Wake::Broadcast { feed, frame } => {
                    let mut delivered = 0u64;
                    for conn in self.conns.values_mut() {
                        if conn.mode == ConnMode::Stream(feed)
                            && !conn.dead
                            && !conn.close_after_flush
                        {
                            conn.enqueue(frame.clone());
                            conn.flush();
                            delivered += 1;
                        }
                    }
                    if delivered > 0 {
                        self.shared.metrics.record_rpc_events(delivered);
                    }
                }
            }
        }
    }

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let _ = stream.set_nonblocking(true);
                    let _ = stream.set_nodelay(true);
                    self.shared.metrics.record_rpc_connection();
                    self.next_token += 1;
                    self.conns.insert(self.next_token, ConnState::new(stream));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return,
            }
        }
    }

    /// Drains every complete frame the socket has to offer right now.
    fn read_conn(&mut self, token: u64) {
        let max = self.cfg.max_frame_bytes;
        loop {
            enum ReadStep {
                Frame(Vec<u8>),
                Idle,
                Closed,
                Reject(FrameError),
            }
            let step = {
                let Some(conn) = self.conns.get_mut(&token) else {
                    return;
                };
                if conn.dead || conn.close_after_flush {
                    return;
                }
                match conn.reader.read_from(&mut conn.stream, max) {
                    Ok(Some(payload)) => ReadStep::Frame(payload),
                    Ok(None) => ReadStep::Idle,
                    Err(FrameError::Closed) => ReadStep::Closed,
                    Err(err) => ReadStep::Reject(err),
                }
            };
            match step {
                ReadStep::Frame(payload) => self.on_frame(token, payload),
                ReadStep::Idle => return,
                ReadStep::Closed => {
                    if let Some(conn) = self.conns.get_mut(&token) {
                        conn.dead = true;
                    }
                    return;
                }
                ReadStep::Reject(err) => {
                    // Typed reject, then close: past a corrupt or
                    // oversized frame the stream is unsynchronized. Only
                    // this connection is affected — the loop and every
                    // other connection keep running.
                    self.shared.metrics.record_rpc_rejected();
                    let frame = frame_response(RpcResponse::Error(frame_reject(&err)));
                    if let Some(conn) = self.conns.get_mut(&token) {
                        conn.enqueue(frame);
                        conn.close_after_flush = true;
                        conn.flush();
                    }
                    return;
                }
            }
        }
    }

    fn on_frame(&mut self, token: u64, payload: Vec<u8>) {
        let is_stream = match self.conns.get(&token) {
            Some(conn) => matches!(conn.mode, ConnMode::Stream(_)),
            None => return,
        };
        if is_stream {
            // Stray frames on a one-way stream are tolerated and ignored,
            // mirroring the client side's tolerance of unknown frames.
            return;
        }
        match decode_request(&payload) {
            Ok(req) => {
                self.shared.metrics.record_rpc_request();
                if let Some(conn) = self.conns.get_mut(&token) {
                    conn.pending.push_back(req);
                }
                self.pump_dispatch(token);
            }
            Err(e) => {
                // Version and payload rejects are per-frame: framing
                // stayed aligned, so the connection survives for a retry
                // with a supported envelope.
                self.shared.metrics.record_rpc_rejected();
                let frame = frame_response(RpcResponse::Error(ApiError::from(e)));
                if let Some(conn) = self.conns.get_mut(&token) {
                    conn.enqueue(frame);
                    conn.flush();
                }
            }
        }
    }

    /// Advances one connection's dispatch state machine: answers what the
    /// reactor can answer inline (`Ping`, `Shutdown`, the `Subscribe`
    /// mode switches), hands fast calls to the pool, and blocking calls
    /// to a transient thread — at most one in flight per connection, so
    /// positional reply correlation holds.
    fn pump_dispatch(&mut self, token: u64) {
        loop {
            enum After {
                Done,
                Again,
                Spawn(RpcRequest),
                Pump(Feed),
            }
            let now_ms = self.shared.clock.now_ms();
            let lease_gate = match self.lease_observer {
                Some(obs) if !self.lease_ok => Some(obs as u64),
                _ => None,
            };
            let jobs_tx = self.jobs_tx.clone();
            let shutdown_requested = Arc::clone(&self.shutdown_requested);
            let after = {
                let Some(conn) = self.conns.get_mut(&token) else {
                    return;
                };
                if conn.inflight || conn.dead || conn.close_after_flush {
                    return;
                }
                if conn.mode != ConnMode::Request {
                    return;
                }
                let Some(req) = conn.pending.pop_front() else {
                    return;
                };
                match req {
                    RpcRequest::Ping => {
                        conn.enqueue(frame_response(RpcResponse::Pong { now_ms }));
                        conn.flush();
                        After::Again
                    }
                    RpcRequest::Shutdown => {
                        shutdown_requested.store(true, Ordering::SeqCst);
                        conn.enqueue(frame_response(RpcResponse::ShutdownAck));
                        conn.flush();
                        After::Again
                    }
                    RpcRequest::Subscribe | RpcRequest::SubscribeTwin => {
                        let feed = if matches!(req, RpcRequest::SubscribeTwin) {
                            Feed::Twin
                        } else {
                            Feed::Txn
                        };
                        if let Some(observer) = lease_gate {
                            // The fan-out observer cannot currently bound
                            // staleness; refuse typed so the client can
                            // tell this from a shutdown.
                            conn.enqueue(frame_response(RpcResponse::Error(
                                ApiError::LeaseExpired { observer },
                            )));
                            conn.close_after_flush = true;
                            conn.flush();
                            After::Done
                        } else {
                            conn.mode = ConnMode::Stream(feed);
                            conn.pending.clear();
                            conn.enqueue(frame_response(RpcResponse::Subscribed));
                            conn.flush();
                            After::Pump(feed)
                        }
                    }
                    req if is_blocking(&req) => {
                        conn.inflight = true;
                        After::Spawn(req)
                    }
                    req => {
                        conn.inflight = true;
                        match &jobs_tx {
                            Some(tx) if tx.send(Job { token, req }).is_ok() => {}
                            _ => {
                                // Pool gone: only during teardown.
                                conn.inflight = false;
                                conn.enqueue(frame_response(RpcResponse::Error(
                                    ApiError::ShuttingDown,
                                )));
                                conn.flush();
                            }
                        }
                        After::Done
                    }
                }
            };
            match after {
                After::Done => return,
                After::Again => continue,
                After::Spawn(req) => {
                    self.spawn_waiter(token, req);
                    return;
                }
                After::Pump(feed) => {
                    self.ensure_pump(feed);
                    return;
                }
            }
        }
    }

    /// Runs one blocking call on a transient thread with its own
    /// coordination session (as each connection's thread had under the
    /// thread-per-connection server). The sliced helpers it lands in
    /// re-check the stop flag every [`WAIT_SLICE`].
    fn spawn_waiter(&mut self, token: u64, req: RpcRequest) {
        self.waiters.retain(|h| !h.is_finished());
        self.waiter_seq += 1;
        let seq = self.waiter_seq;
        let shared = self.shared.clone();
        let stop = Arc::clone(&self.stop);
        let shutdown_requested = Arc::clone(&self.shutdown_requested);
        let done = self.done.clone();
        let spawned = std::thread::Builder::new()
            .name(format!("tropic-rpc-wait-{seq}"))
            .spawn(move || {
                let client = shared.client(&format!("rpc-wait-{seq}"));
                let mut admin: Option<AdminClient> = None;
                let resp = dispatch(
                    &shared,
                    &client,
                    &mut admin,
                    &stop,
                    &shutdown_requested,
                    req,
                );
                done.send(Wake::Reply {
                    token,
                    frame: frame_response(resp),
                });
            });
        match spawned {
            Ok(h) => self.waiters.push(h),
            Err(_) => self.done.send(Wake::Reply {
                token,
                frame: frame_response(RpcResponse::Error(ApiError::Transport(
                    "server cannot spawn a wait thread".into(),
                ))),
            }),
        }
    }

    /// Starts the feed pump on first subscription: one thread per feed,
    /// regardless of subscriber count — it encodes each event once and
    /// the reactor clones the frame handle per subscriber.
    fn ensure_pump(&mut self, feed: Feed) {
        let started = match feed {
            Feed::Txn => &mut self.pump_started.0,
            Feed::Twin => &mut self.pump_started.1,
        };
        if *started {
            return;
        }
        *started = true;
        let shared = self.shared.clone();
        let stop = Arc::clone(&self.stop);
        let done = self.done.clone();
        type PumpFn = fn(PlatformShared, Arc<AtomicBool>, DoneTx);
        let (name, pump): (&str, PumpFn) = match feed {
            Feed::Txn => ("tropic-rpc-txn-pump", pump_txn),
            Feed::Twin => ("tropic-rpc-twin-pump", pump_twin),
        };
        if let Ok(h) = std::thread::Builder::new()
            .name(name.into())
            .spawn(move || pump(shared, stop, done))
        {
            self.pumps.push(h);
        }
    }

    /// Re-validates the fan-out observer's staleness lease every
    /// [`LEASE_CHECK_PERIOD`]. On expiry every streaming connection is
    /// closed with the typed [`ApiError::LeaseExpired`] and new
    /// subscriptions are refused; fan-out resumes when the lease heals.
    fn check_lease(&mut self) {
        let Some(observer) = self.lease_observer else {
            return;
        };
        if self.last_lease_check.elapsed() < LEASE_CHECK_PERIOD {
            return;
        }
        self.last_lease_check = Instant::now();
        let ok = self.shared.coord.observer_lease_valid(observer);
        if ok == self.lease_ok {
            return;
        }
        self.lease_ok = ok;
        if ok {
            return;
        }
        let frame = frame_response(RpcResponse::Error(ApiError::LeaseExpired {
            observer: observer as u64,
        }));
        for conn in self.conns.values_mut() {
            if matches!(conn.mode, ConnMode::Stream(_)) && !conn.dead {
                conn.enqueue(frame.clone());
                conn.close_after_flush = true;
                conn.flush();
            }
        }
    }

    fn teardown(mut self) {
        // Close the job queue; workers drain what's queued, then exit.
        self.jobs_tx = None;
        for w in std::mem::take(&mut self.workers) {
            let _ = w.join();
        }
        // Transient waiters observe the stop flag within one wait slice.
        for w in std::mem::take(&mut self.waiters) {
            let _ = w.join();
        }
        // Everything that was in flight has now sent its completion.
        self.drain_completions();
        let bye = frame_response(RpcResponse::Error(ApiError::ShuttingDown));
        for conn in self.conns.values_mut() {
            if conn.dead {
                continue;
            }
            match conn.mode {
                // Streams get a typed goodbye distinguishing planned
                // teardown from a lease expiry or a crash.
                ConnMode::Stream(_) => conn.enqueue(bye.clone()),
                // Positional correlation: every request still owed a
                // reply gets the typed refusal instead of silence.
                ConnMode::Request => {
                    let owed = conn.pending.len() + usize::from(conn.inflight);
                    for _ in 0..owed {
                        conn.enqueue(bye.clone());
                    }
                    conn.pending.clear();
                }
            }
        }
        // Best-effort bounded blocking flush so those frames reach peers.
        for conn in self.conns.values_mut() {
            if conn.dead {
                continue;
            }
            let _ = conn.stream.set_nonblocking(false);
            let _ = conn.stream.set_write_timeout(Some(TEARDOWN_FLUSH_TIMEOUT));
            'frames: while let Some(front) = conn.outbound.front() {
                while let Some(unsent) = front.get(conn.out_pos..).filter(|u| !u.is_empty()) {
                    match conn.stream.write(unsent) {
                        Ok(0) | Err(_) => break 'frames,
                        Ok(n) => conn.out_pos += n,
                    }
                }
                conn.out_pos = 0;
                conn.outbound.pop_front();
            }
        }
        // Dropping the map closes every socket.
        self.conns.clear();
        // Pumps exit on their next stop-flag check.
        for p in std::mem::take(&mut self.pumps) {
            let _ = p.join();
        }
    }
}

/// One dispatch-pool worker: a long-lived coordination session answering
/// non-blocking calls pulled off the shared job queue.
fn worker_loop(
    shared: PlatformShared,
    idx: usize,
    jobs: crossbeam::channel::Receiver<Job>,
    done: DoneTx,
    stop: Arc<AtomicBool>,
    shutdown_requested: Arc<AtomicBool>,
) {
    let client = shared.client(&format!("rpc-pool-{idx}"));
    let mut admin: Option<AdminClient> = None;
    while let Ok(job) = jobs.recv() {
        let resp = dispatch(
            &shared,
            &client,
            &mut admin,
            &stop,
            &shutdown_requested,
            job.req,
        );
        done.send(Wake::Reply {
            token: job.token,
            frame: frame_response(resp),
        });
    }
}

/// Maps a frame-boundary failure onto the typed taxonomy: an oversized
/// declared length is a request that can never succeed (permanent); a CRC
/// mismatch or mid-frame tear is a damaged transport (retryable over a
/// fresh connection).
fn frame_reject(err: &FrameError) -> ApiError {
    match err {
        FrameError::Oversized { len, max } => ApiError::InvalidRequest(format!(
            "frame of {len} bytes exceeds the server's {max}-byte cap"
        )),
        other => ApiError::Transport(other.to_string()),
    }
}

fn dispatch(
    shared: &PlatformShared,
    client: &TropicClient,
    admin: &mut Option<AdminClient>,
    stop: &AtomicBool,
    shutdown_requested: &AtomicBool,
    req: RpcRequest,
) -> RpcResponse {
    match req {
        RpcRequest::Submit(request) => match client.submit_request(request) {
            Ok(h) => RpcResponse::Submitted {
                id: h.id(),
                deadline_ms: h.deadline_ms(),
            },
            Err(e) => RpcResponse::Error(e),
        },
        RpcRequest::SubmitBatch(requests) => match client.submit_batch(requests) {
            Ok(hs) => RpcResponse::SubmittedBatch {
                handles: hs.iter().map(|h| (h.id(), h.deadline_ms())).collect(),
            },
            Err(e) => RpcResponse::Error(e),
        },
        RpcRequest::TryOutcome { id } => match client.handle(id).try_outcome() {
            Ok(outcome) => RpcResponse::Outcome(outcome),
            Err(e) => RpcResponse::Error(e),
        },
        RpcRequest::Wait { id, timeout_ms } => wait_sliced(client, id, timeout_ms, stop),
        RpcRequest::Record { id } => match client.txn_record(id) {
            Ok(rec) => RpcResponse::Record(rec.map(Box::new)),
            Err(e) => RpcResponse::Error(e.into()),
        },
        RpcRequest::Repair { scope, timeout_ms } => {
            let admin = admin.get_or_insert_with(|| shared.admin("rpc-admin"));
            admin_sliced(admin, &scope, timeout_ms, true, stop)
        }
        RpcRequest::Reload { scope, timeout_ms } => {
            let admin = admin.get_or_insert_with(|| shared.admin("rpc-admin"));
            admin_sliced(admin, &scope, timeout_ms, false, stop)
        }
        RpcRequest::Signal { id, signal } => {
            let admin = admin.get_or_insert_with(|| shared.admin("rpc-admin"));
            match admin.signal(id, signal) {
                Ok(()) => RpcResponse::Signaled,
                Err(e) => RpcResponse::Error(e),
            }
        }
        // Subscribe switches the connection mode and is handled inline by
        // the reactor before dispatch (as are Ping and Shutdown; the arms
        // below keep dispatch total).
        RpcRequest::Subscribe | RpcRequest::SubscribeTwin => RpcResponse::Subscribed,
        RpcRequest::Ping => RpcResponse::Pong {
            now_ms: shared.clock.now_ms(),
        },
        RpcRequest::Shutdown => {
            shutdown_requested.store(true, Ordering::SeqCst);
            RpcResponse::ShutdownAck
        }
    }
}

/// Enqueues one repair/reload, then blocks toward the caller's deadline in
/// short slices: `timeout_ms` is wire-controlled and unclamped, so a
/// stopping server must never be pinned by a remote operator's long bound.
fn admin_sliced(
    admin: &AdminClient,
    scope: &Path,
    timeout_ms: u64,
    repair: bool,
    stop: &AtomicBool,
) -> RpcResponse {
    let admin_id = match admin.enqueue_admin(scope, repair) {
        Ok(id) => id,
        Err(e) => return RpcResponse::Error(e),
    };
    let deadline = Instant::now() + Duration::from_millis(timeout_ms);
    loop {
        if stop.load(Ordering::SeqCst) {
            return RpcResponse::Error(ApiError::ShuttingDown);
        }
        // Always attempt at least one wait slice (wait_admin polls the
        // result before sleeping), so an already-finished operation beats
        // an elapsed bound — the in-process semantics.
        let slice = deadline
            .saturating_duration_since(Instant::now())
            .min(WAIT_SLICE);
        match admin.wait_admin(admin_id, slice) {
            Ok(result) => return RpcResponse::Admin(result),
            Err(ApiError::WaitTimeout { .. }) => {
                if Instant::now() >= deadline {
                    return RpcResponse::Error(ApiError::WaitTimeout { id: admin_id });
                }
            }
            Err(e) => return RpcResponse::Error(e),
        }
    }
}

/// Blocks toward the caller's deadline in short slices so a stopping
/// server is never pinned by a long remote wait.
fn wait_sliced(
    client: &TropicClient,
    id: TxnId,
    timeout_ms: u64,
    stop: &AtomicBool,
) -> RpcResponse {
    let deadline = Instant::now() + Duration::from_millis(timeout_ms);
    let handle = client.handle(id);
    loop {
        if stop.load(Ordering::SeqCst) {
            return RpcResponse::Error(ApiError::ShuttingDown);
        }
        // Always attempt at least one wait slice (wait_timeout polls the
        // outcome before sleeping), so an already-terminal transaction
        // beats an elapsed bound — the in-process semantics.
        let slice = deadline
            .saturating_duration_since(Instant::now())
            .min(WAIT_SLICE);
        match handle.wait_timeout(slice) {
            Ok(outcome) => return RpcResponse::Outcome(Some(outcome)),
            Err(ApiError::WaitTimeout { .. }) => {
                if Instant::now() >= deadline {
                    return RpcResponse::Error(ApiError::WaitTimeout { id });
                }
            }
            Err(e) => return RpcResponse::Error(e),
        }
    }
}

/// Feeds the reactor transaction lifecycle events off a dedicated watcher
/// session, exactly as the in-process [`crate::api::Subscription`] (it
/// *is* one). Each event is encoded into one shared frame here; the
/// reactor clones the handle onto every subscriber's outbound queue.
fn pump_txn(shared: PlatformShared, stop: Arc<AtomicBool>, done: DoneTx) {
    let sub = shared.subscription();
    while !stop.load(Ordering::SeqCst) {
        if let Some(ev) = sub.recv_timeout(Duration::from_millis(100)) {
            done.send(Wake::Broadcast {
                feed: Feed::Txn,
                frame: frame_response(RpcResponse::Event(ev)),
            });
        }
    }
}

/// Feeds the reactor digital-twin phase transitions, mirroring
/// [`pump_txn`] over the platform's in-process [`crate::TwinFeed`].
fn pump_twin(shared: PlatformShared, stop: Arc<AtomicBool>, done: DoneTx) {
    let sub = shared.twin_feed.subscribe();
    while !stop.load(Ordering::SeqCst) {
        if let Some(ev) = sub.recv_timeout(Duration::from_millis(100)) {
            done.send(Wake::Broadcast {
                feed: Feed::Twin,
                frame: frame_response(RpcResponse::TwinEvent(ev)),
            });
        }
    }
}

// ---------------------------------------------------------------------
// Remote client.
// ---------------------------------------------------------------------

struct Conn {
    stream: TcpStream,
    reader: FrameReader,
}

/// A client to a remote TROPIC platform, mirroring
/// [`crate::TropicClient`]'s typed surface over one TCP connection.
///
/// Calls on one `RemoteClient` run in lockstep over its single connection
/// (a long [`RemoteHandle::wait`] holds the line); open one client per
/// concurrent caller — connections are cheap, and each gets its own
/// coordination session server-side. [`RemoteClient::subscribe`] opens its
/// own dedicated connection. A connection that can no longer correlate
/// replies (response timeout, damaged frame, server close) is retired and
/// transparently re-dialed on the next call.
pub struct RemoteClient {
    addr: SocketAddr,
    /// `None` between a poisoned connection and the next call's re-dial.
    io: Mutex<Option<Conn>>,
    max_frame_bytes: u32,
}

impl RemoteClient {
    /// Connects to a serving [`RpcServer`].
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ApiError> {
        let addr = addr
            .to_socket_addrs()
            .map_err(transport)?
            .next()
            .ok_or_else(|| ApiError::Transport("address resolved to nothing".into()))?;
        let conn = Self::dial(&addr)?;
        Ok(RemoteClient {
            addr,
            io: Mutex::new(Some(conn)),
            max_frame_bytes: tropic_coord::DEFAULT_MAX_FRAME_BYTES,
        })
    }

    /// Raises (or lowers) the frame-size cap this client accepts on
    /// replies and subscription events. Must cover the server's
    /// [`crate::config::RpcConfig::max_frame_bytes`] when that is raised
    /// above the default, or large replies (e.g. a transaction record with
    /// a long execution log) are rejected client-side as oversized.
    pub fn with_max_frame_bytes(mut self, max_frame_bytes: u32) -> Self {
        self.max_frame_bytes = max_frame_bytes;
        self
    }

    fn dial(addr: &SocketAddr) -> Result<Conn, ApiError> {
        let stream = TcpStream::connect_timeout(addr, CONNECT_TIMEOUT).map_err(transport)?;
        let _ = stream.set_nodelay(true);
        let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
        Ok(Conn {
            stream,
            reader: FrameReader::new(),
        })
    }

    /// The server address this client is connected to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// One framed request, one framed reply. `read_timeout` bounds how
    /// long the server may take (plus [`READ_GRACE`] slack for transport).
    ///
    /// Request/response correlation is positional (one reply per request,
    /// in order), so any failure that could leave a reply in flight — a
    /// response timeout, a damaged frame, a mid-frame close — **poisons**
    /// the connection: it is dropped, and the next call dials a fresh one.
    /// A stale reply can therefore never be read as the answer to a later
    /// call.
    fn call(&self, req: RpcRequest, read_timeout: Duration) -> Result<RpcResponse, ApiError> {
        let mut guard = self.io.lock();
        let conn = match guard.as_mut() {
            Some(conn) => conn,
            None => guard.insert(Self::dial(&self.addr)?),
        };
        let Conn { stream, reader } = conn;
        // Slice the socket timeout so the deadline loop below stays
        // responsive regardless of how long the whole call may block.
        stream
            .set_read_timeout(Some(Duration::from_millis(50)))
            .map_err(transport)?;
        if let Err(e) = write_frame(stream, &encode_request(req)?) {
            *guard = None;
            return Err(transport(e));
        }
        let deadline = Instant::now() + read_timeout + READ_GRACE;
        loop {
            // analyze:allow(blocking-under-lock): the io lock IS the line discipline — one in-flight call per connection
            match reader.read_from(stream, self.max_frame_bytes) {
                Ok(Some(payload)) => {
                    return match decode_response(&payload).map_err(ApiError::from)? {
                        RpcResponse::Error(e) => Err(e),
                        ok => Ok(ok),
                    };
                }
                Ok(None) => {
                    if Instant::now() >= deadline {
                        // The server may still answer later; this stream
                        // can no longer tell that stale reply apart from
                        // the next call's, so retire it.
                        *guard = None;
                        return Err(ApiError::Transport(
                            "timed out awaiting the RPC response".into(),
                        ));
                    }
                }
                Err(FrameError::Closed) => {
                    *guard = None;
                    return Err(ApiError::Transport("server closed the connection".into()));
                }
                Err(e @ FrameError::Oversized { .. }) => {
                    // Permanent, mirroring the server's classification: a
                    // reply past this client's cap fails identically on
                    // every retry until `with_max_frame_bytes` is raised.
                    *guard = None;
                    return Err(ApiError::InvalidRequest(e.to_string()));
                }
                Err(e) => {
                    *guard = None;
                    return Err(transport(e));
                }
            }
        }
    }

    /// Submits a typed request; the server assigns the transaction id.
    /// Mirrors [`crate::TropicClient::submit_request`].
    pub fn submit_request(&self, request: TxnRequest) -> Result<RemoteHandle<'_>, ApiError> {
        match self.call(RpcRequest::Submit(request), CALL_TIMEOUT)? {
            RpcResponse::Submitted { id, deadline_ms } => Ok(RemoteHandle {
                client: self,
                id,
                deadline_ms,
            }),
            other => Err(unexpected(&other)),
        }
    }

    /// Submits several requests as one atomic enqueue. Mirrors
    /// [`crate::TropicClient::submit_batch`].
    pub fn submit_batch(
        &self,
        requests: Vec<TxnRequest>,
    ) -> Result<Vec<RemoteHandle<'_>>, ApiError> {
        if requests.is_empty() {
            return Ok(Vec::new());
        }
        match self.call(RpcRequest::SubmitBatch(requests), CALL_TIMEOUT)? {
            RpcResponse::SubmittedBatch { handles } => Ok(handles
                .into_iter()
                .map(|(id, deadline_ms)| RemoteHandle {
                    client: self,
                    id,
                    deadline_ms,
                })
                .collect()),
            other => Err(unexpected(&other)),
        }
    }

    /// Re-attaches a handle to an already-submitted transaction id.
    pub fn handle(&self, id: TxnId) -> RemoteHandle<'_> {
        RemoteHandle {
            client: self,
            id,
            deadline_ms: None,
        }
    }

    /// Reads the full durable record of a transaction, if still retained.
    pub fn txn_record(&self, id: TxnId) -> Result<Option<TxnRecord>, ApiError> {
        match self.call(RpcRequest::Record { id }, CALL_TIMEOUT)? {
            RpcResponse::Record(rec) => Ok(rec.map(|b| *b)),
            other => Err(unexpected(&other)),
        }
    }

    /// Liveness probe; returns the platform clock (ms) — also how remote
    /// callers compute absolute deadlines without a local platform clock.
    pub fn ping(&self) -> Result<u64, ApiError> {
        match self.call(RpcRequest::Ping, CALL_TIMEOUT)? {
            RpcResponse::Pong { now_ms } => Ok(now_ms),
            other => Err(unexpected(&other)),
        }
    }

    /// Opens a streaming subscription to transaction lifecycle events on a
    /// dedicated connection. Mirrors [`crate::TropicClient::subscribe`].
    pub fn subscribe(&self) -> Result<RemoteSubscription, ApiError> {
        RemoteSubscription::open(self.addr, self.max_frame_bytes, false)
    }

    /// Opens a streaming subscription to digital-twin phase transitions
    /// ([`TwinEvent`]) on a dedicated connection. Read the feed with
    /// [`RemoteSubscription::recv_twin_timeout`] /
    /// [`RemoteSubscription::drain_twin`].
    pub fn subscribe_twin(&self) -> Result<RemoteSubscription, ApiError> {
        RemoteSubscription::open(self.addr, self.max_frame_bytes, true)
    }

    /// The operator plane, sharing this client's connection. Mirrors
    /// [`crate::Tropic::admin`].
    pub fn admin(&self) -> RemoteAdmin<'_> {
        RemoteAdmin { client: self }
    }

    /// Asks the serving process to shut down (see
    /// [`RpcServer::shutdown_requested`]).
    pub fn shutdown_server(&self) -> Result<(), ApiError> {
        match self.call(RpcRequest::Shutdown, CALL_TIMEOUT)? {
            RpcResponse::ShutdownAck => Ok(()),
            other => Err(unexpected(&other)),
        }
    }
}

fn unexpected(resp: &RpcResponse) -> ApiError {
    ApiError::Transport(format!("protocol violation: unexpected response {resp:?}"))
}

/// A handle to one transaction submitted over the wire, mirroring
/// [`crate::api::TxnHandle`]. Outcome reads follow idempotency aliases
/// transparently (the server resolves them).
pub struct RemoteHandle<'c> {
    client: &'c RemoteClient,
    id: TxnId,
    deadline_ms: Option<u64>,
}

impl RemoteHandle<'_> {
    /// The server-assigned transaction id.
    pub fn id(&self) -> TxnId {
        self.id
    }

    /// The admission deadline resolved at submission (platform clock, ms).
    pub fn deadline_ms(&self) -> Option<u64> {
        self.deadline_ms
    }

    /// Non-blocking outcome poll: `Ok(Some(..))` once terminal.
    pub fn try_outcome(&self) -> Result<Option<TxnOutcome>, ApiError> {
        match self
            .client
            .call(RpcRequest::TryOutcome { id: self.id }, CALL_TIMEOUT)?
        {
            RpcResponse::Outcome(outcome) => Ok(outcome),
            other => Err(unexpected(&other)),
        }
    }

    /// Blocks until the transaction reaches a terminal state, bounded by
    /// the request's deadline (fetched against the platform clock via
    /// [`RemoteClient::ping`]) or 60 seconds when none was set.
    pub fn wait(&self) -> Result<TxnOutcome, ApiError> {
        let timeout = match self.deadline_ms {
            Some(d) => {
                let now = self.client.ping()?;
                Duration::from_millis(d.saturating_sub(now).max(1))
            }
            None => DEFAULT_WAIT,
        };
        self.wait_timeout(timeout)
    }

    /// [`RemoteHandle::wait`] with an explicit bound. The server blocks on
    /// the same watch-driven wait the in-process handle uses.
    pub fn wait_timeout(&self, timeout: Duration) -> Result<TxnOutcome, ApiError> {
        let timeout_ms = timeout.as_millis().min(u64::MAX as u128) as u64;
        let req = RpcRequest::Wait {
            id: self.id,
            timeout_ms,
        };
        match self.client.call(req, timeout)? {
            RpcResponse::Outcome(Some(outcome)) => Ok(outcome),
            RpcResponse::Outcome(None) => Err(ApiError::WaitTimeout { id: self.id }),
            other => Err(unexpected(&other)),
        }
    }
}

/// The operator plane over the wire, mirroring [`crate::api::AdminClient`].
pub struct RemoteAdmin<'c> {
    client: &'c RemoteClient,
}

impl RemoteAdmin<'_> {
    /// Runs `repair` over `scope`, blocking up to `timeout` for the result.
    pub fn repair(&self, scope: &Path, timeout: Duration) -> Result<AdminResult, ApiError> {
        let req = RpcRequest::Repair {
            scope: scope.clone(),
            timeout_ms: timeout.as_millis().min(u64::MAX as u128) as u64,
        };
        match self.client.call(req, timeout)? {
            RpcResponse::Admin(result) => Ok(result),
            other => Err(unexpected(&other)),
        }
    }

    /// Runs `reload` over `scope`, blocking up to `timeout` for the result.
    pub fn reload(&self, scope: &Path, timeout: Duration) -> Result<AdminResult, ApiError> {
        let req = RpcRequest::Reload {
            scope: scope.clone(),
            timeout_ms: timeout.as_millis().min(u64::MAX as u128) as u64,
        };
        match self.client.call(req, timeout)? {
            RpcResponse::Admin(result) => Ok(result),
            other => Err(unexpected(&other)),
        }
    }

    /// Sends a TERM or KILL signal to a transaction.
    pub fn signal(&self, id: TxnId, signal: Signal) -> Result<(), ApiError> {
        match self
            .client
            .call(RpcRequest::Signal { id, signal }, CALL_TIMEOUT)?
        {
            RpcResponse::Signaled => Ok(()),
            other => Err(unexpected(&other)),
        }
    }
}

/// A streaming feed from a remote platform: transaction lifecycle events
/// ([`TxnEvent`], via [`RemoteClient::subscribe`]) or digital-twin phase
/// transitions ([`TwinEvent`], via [`RemoteClient::subscribe_twin`]) —
/// the subscription filter is chosen at open time. Runs on its own
/// connection; dropping it closes the socket and ends the feed.
pub struct RemoteSubscription {
    rx: mpsc::Receiver<TxnEvent>,
    twin_rx: mpsc::Receiver<TwinEvent>,
    stream: TcpStream,
    thread: Option<JoinHandle<()>>,
    close_reason: Arc<Mutex<Option<ApiError>>>,
}

impl RemoteSubscription {
    fn open(addr: SocketAddr, max_frame_bytes: u32, twin: bool) -> Result<Self, ApiError> {
        let mut stream = TcpStream::connect_timeout(&addr, CONNECT_TIMEOUT).map_err(transport)?;
        let _ = stream.set_nodelay(true);
        let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
        stream
            .set_read_timeout(Some(Duration::from_millis(50)))
            .map_err(transport)?;
        let subscribe = if twin {
            RpcRequest::SubscribeTwin
        } else {
            RpcRequest::Subscribe
        };
        write_frame(&mut stream, &encode_request(subscribe)?).map_err(transport)?;
        // Wait for the mode-switch ack before handing the socket to the
        // reader thread, so connect errors surface typed right here.
        let mut reader = FrameReader::new();
        let deadline = Instant::now() + CALL_TIMEOUT;
        loop {
            match reader.read_from(&mut stream, max_frame_bytes) {
                Ok(Some(payload)) => match decode_response(&payload).map_err(ApiError::from)? {
                    RpcResponse::Subscribed => break,
                    RpcResponse::Error(e) => return Err(e),
                    other => return Err(unexpected(&other)),
                },
                Ok(None) => {
                    if Instant::now() >= deadline {
                        return Err(ApiError::Transport(
                            "timed out awaiting the subscription ack".into(),
                        ));
                    }
                }
                Err(e) => return Err(transport(e)),
            }
        }
        let (tx, rx) = mpsc::channel();
        let (twin_tx, twin_rx) = mpsc::channel();
        let close_reason: Arc<Mutex<Option<ApiError>>> = Arc::new(Mutex::new(None));
        let thread = {
            let mut stream = stream.try_clone().map_err(transport)?;
            let close_reason = Arc::clone(&close_reason);
            std::thread::Builder::new()
                .name("tropic-remote-subscriber".into())
                .spawn(move || {
                    loop {
                        match reader.read_from(&mut stream, max_frame_bytes) {
                            Ok(Some(payload)) => {
                                // Anything that is not a decodable event is
                                // tolerated and skipped: the stream must
                                // survive frames a newer server might add.
                                // An error frame is the server's stated
                                // close reason: record it and end the feed.
                                let delivered = match decode_response(&payload) {
                                    Ok(RpcResponse::Event(ev)) => tx.send(ev).is_ok(),
                                    Ok(RpcResponse::TwinEvent(ev)) => twin_tx.send(ev).is_ok(),
                                    Ok(RpcResponse::Error(e)) => {
                                        *close_reason.lock() = Some(e);
                                        return;
                                    }
                                    _ => true,
                                };
                                if !delivered {
                                    return; // receiver dropped
                                }
                            }
                            Ok(None) => {}    // idle; keep listening
                            Err(_) => return, // closed or damaged: end the feed
                        }
                    }
                })
                .map_err(transport)?
        };
        Ok(RemoteSubscription {
            rx,
            twin_rx,
            stream,
            thread: Some(thread),
            close_reason,
        })
    }

    /// Returns the next buffered event without blocking.
    pub fn try_recv(&self) -> Option<TxnEvent> {
        self.rx.try_recv().ok()
    }

    /// Blocks up to `timeout` for the next event.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<TxnEvent> {
        self.rx.recv_timeout(timeout).ok()
    }

    /// Drains every currently-buffered event.
    pub fn drain(&self) -> Vec<TxnEvent> {
        let mut out = Vec::new();
        while let Some(ev) = self.try_recv() {
            out.push(ev);
        }
        out
    }

    /// Returns the next buffered twin event without blocking (twin
    /// subscriptions only).
    pub fn try_recv_twin(&self) -> Option<TwinEvent> {
        self.twin_rx.try_recv().ok()
    }

    /// Blocks up to `timeout` for the next twin event (twin subscriptions
    /// only).
    pub fn recv_twin_timeout(&self, timeout: Duration) -> Option<TwinEvent> {
        self.twin_rx.recv_timeout(timeout).ok()
    }

    /// Drains every currently-buffered twin event.
    pub fn drain_twin(&self) -> Vec<TwinEvent> {
        let mut out = Vec::new();
        while let Some(ev) = self.try_recv_twin() {
            out.push(ev);
        }
        out
    }

    /// Whether the feed can still deliver new events. `false` once the
    /// server closed the stream (shutdown, damaged frame): buffered events
    /// remain readable, but nothing further will arrive — resubscribe via
    /// [`RemoteClient::subscribe`] to continue.
    pub fn is_live(&self) -> bool {
        self.thread.as_ref().is_some_and(|t| !t.is_finished())
    }

    /// Why the server closed this feed, when it said so with a typed
    /// error frame before closing: [`ApiError::ShuttingDown`] for a
    /// planned stop, [`ApiError::LeaseExpired`] when the fan-out
    /// observer's staleness lease lapsed (resubscribe once the quorum
    /// heals). `None` while the feed is live, and `None` after a close
    /// the server never explained (crash, cut network) — so callers can
    /// distinguish *all three* cases together with
    /// [`RemoteSubscription::is_live`]. See `docs/WIRE_PROTOCOL.md`,
    /// "Close reasons".
    pub fn close_reason(&self) -> Option<ApiError> {
        self.close_reason.lock().clone()
    }
}

impl Drop for RemoteSubscription {
    fn drop(&mut self) {
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_envelope_roundtrip() {
        let bytes = encode_request(RpcRequest::Wait {
            id: 7,
            timeout_ms: 1_500,
        })
        .unwrap();
        match decode_request(&bytes).unwrap() {
            RpcRequest::Wait { id, timeout_ms } => {
                assert_eq!((id, timeout_ms), (7, 1_500));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn response_envelope_roundtrip() {
        let bytes = encode_response(RpcResponse::Submitted {
            id: 9,
            deadline_ms: Some(42),
        })
        .unwrap();
        match decode_response(&bytes).unwrap() {
            RpcResponse::Submitted { id, deadline_ms } => {
                assert_eq!((id, deadline_ms), (9, Some(42)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn future_version_rejected_even_with_unparseable_payload() {
        let bytes = br#"{"v":9,"msg":{"HologramRequest":{"x":1}}}"#;
        assert!(matches!(
            decode_request(bytes),
            Err(WireError::UnsupportedVersion(9))
        ));
        assert!(matches!(
            decode_response(bytes),
            Err(WireError::UnsupportedVersion(9))
        ));
    }

    #[test]
    fn unversioned_payload_is_malformed_on_the_socket() {
        // The queue codec accepts bare legacy messages; the socket protocol
        // was born versioned, so an unversioned payload is rejected.
        let bytes = br#"{"Ping":null}"#;
        assert!(matches!(
            decode_request(bytes),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn error_response_preserves_retryable_partition() {
        for (err, retryable) in [
            (ApiError::WaitTimeout { id: 3 }, true),
            (ApiError::Transport("reset".into()), true),
            (ApiError::UnsupportedWireVersion { version: 8 }, false),
            (ApiError::UnknownProcedure("nope".into()), false),
        ] {
            let bytes = encode_response(RpcResponse::Error(err.clone())).unwrap();
            match decode_response(&bytes).unwrap() {
                RpcResponse::Error(back) => {
                    assert_eq!(back, err);
                    assert_eq!(back.retryable(), retryable);
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }
}

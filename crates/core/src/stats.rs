//! Platform metrics backing the paper's evaluation figures (§6).
//!
//! The controller accounts its busy time (logical simulation + scheduling,
//! excluding coordination I/O waits) so the CPU-utilization experiment
//! (Figure 4) can compute per-interval utilization; every finalized
//! transaction contributes a latency sample for the CDF of Figure 5; and
//! leadership events timestamp failover for the §6.4 recovery experiment.

use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::txn::{TxnId, TxnState};

/// One finalized transaction's timing sample.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TxnSample {
    /// Transaction id.
    pub id: TxnId,
    /// Submission time (platform clock, ms).
    pub submitted_ms: u64,
    /// Completion time (platform clock, ms).
    pub finished_ms: u64,
    /// Terminal state.
    pub state: TxnState,
    /// Times the transaction was deferred on lock conflicts.
    pub defer_count: u32,
}

impl TxnSample {
    /// End-to-end latency in milliseconds.
    pub fn latency_ms(&self) -> u64 {
        self.finished_ms.saturating_sub(self.submitted_ms)
    }
}

/// Aggregate counters.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct Counters {
    /// Transactions committed.
    pub committed: u64,
    /// Transactions aborted (logical or physical rollback).
    pub aborted: u64,
    /// Transactions failed (partial physical rollback).
    pub failed: u64,
    /// Deferred scheduling attempts (lock conflicts).
    pub defers: u64,
    /// Constraint-violation aborts within `aborted`.
    pub violations: u64,
    /// Checkpoints written.
    pub checkpoints: u64,
    /// Repair operations run.
    pub repairs: u64,
    /// Reload operations run.
    pub reloads: u64,
    /// Submissions admitted through the high-priority lane.
    #[serde(default)]
    pub admitted_high: u64,
    /// Submissions admitted through the normal lane (including legacy
    /// un-versioned submissions).
    #[serde(default)]
    pub admitted_normal: u64,
    /// Submissions admitted through the batch lane.
    #[serde(default)]
    pub admitted_batch: u64,
    /// Submissions aborted at admission because their deadline had passed.
    #[serde(default)]
    pub deadline_rejects: u64,
    /// Submissions deduplicated onto an earlier transaction by
    /// idempotency key.
    #[serde(default)]
    pub idempotent_hits: u64,
    /// Connections accepted by the RPC frontend over its lifetime.
    #[serde(default)]
    pub rpc_connections: u64,
    /// RPC requests decoded and dispatched (across all connections).
    #[serde(default)]
    pub rpc_requests: u64,
    /// RPC frames rejected at the boundary: unsupported wire version,
    /// malformed payload, corrupt or oversized frame.
    #[serde(default)]
    pub rpc_rejected: u64,
    /// Transaction lifecycle events streamed to remote subscribers.
    #[serde(default)]
    pub rpc_events_streamed: u64,
    /// Device actions that passed fault-injection checks. Populated by
    /// [`crate::Tropic::counters`] from the device registry's aggregated
    /// [`FaultStats`](tropic_devices::FaultStats); always zero through the
    /// raw [`Metrics::counters`] snapshot and in logical-only mode.
    #[serde(default)]
    pub faults_passed: u64,
    /// Device actions failed by fault injection (see
    /// [`Counters::faults_passed`]). The chaos harness uses this to
    /// attribute aborts to injected faults rather than real bugs.
    #[serde(default)]
    pub faults_injected: u64,
    /// Drift episodes detected by the twin reconciler: transitions of a
    /// resource from `InSync` to `Drifted` (re-detections of the same
    /// ongoing drift do not count again).
    #[serde(default)]
    pub drift_detected: u64,
    /// Drift episodes the reconciler drove back to `Converged`.
    #[serde(default)]
    pub drift_repaired: u64,
    /// Drift episodes escalated to `Degraded` after exhausting the
    /// configured repair attempts.
    #[serde(default)]
    pub drift_escalated: u64,
}

/// A leadership or recovery event, timestamped on the platform clock.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Event {
    /// Platform-clock timestamp (ms).
    pub at_ms: u64,
    /// Controller name.
    pub controller: String,
    /// Event description (e.g. `leader-elected`, `recovery-complete`).
    pub kind: String,
}

#[derive(Default)]
struct MetricsInner {
    busy: Duration,
    samples: Vec<TxnSample>,
    counters: Counters,
    events: Vec<Event>,
    convergence_ms: Vec<u64>,
}

/// Shared metrics collector.
#[derive(Clone, Default)]
pub struct Metrics {
    inner: Arc<Mutex<MetricsInner>>,
}

impl Metrics {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds controller busy time (logical-layer compute).
    pub fn add_busy(&self, d: Duration) {
        self.inner.lock().busy += d;
    }

    /// Total accumulated busy time.
    pub fn busy(&self) -> Duration {
        self.inner.lock().busy
    }

    /// Records a finalized transaction.
    pub fn record_txn(&self, sample: TxnSample) {
        let mut inner = self.inner.lock();
        match sample.state {
            TxnState::Committed => inner.counters.committed += 1,
            TxnState::Aborted => inner.counters.aborted += 1,
            TxnState::Failed => inner.counters.failed += 1,
            _ => {}
        }
        inner.samples.push(sample);
    }

    /// Records a deferred scheduling attempt.
    pub fn record_defer(&self) {
        self.inner.lock().counters.defers += 1;
    }

    /// Records a constraint-violation abort.
    pub fn record_violation(&self) {
        self.inner.lock().counters.violations += 1;
    }

    /// Records a checkpoint write.
    pub fn record_checkpoint(&self) {
        self.inner.lock().counters.checkpoints += 1;
    }

    /// Records a repair run.
    pub fn record_repair(&self) {
        self.inner.lock().counters.repairs += 1;
    }

    /// Records a reload run.
    pub fn record_reload(&self) {
        self.inner.lock().counters.reloads += 1;
    }

    /// Records a submission admitted through `priority`'s lane.
    pub fn record_admission(&self, priority: crate::api::Priority) {
        let mut inner = self.inner.lock();
        match priority {
            crate::api::Priority::High => inner.counters.admitted_high += 1,
            crate::api::Priority::Normal => inner.counters.admitted_normal += 1,
            crate::api::Priority::Batch => inner.counters.admitted_batch += 1,
        }
    }

    /// Records a submission aborted at admission for an expired deadline.
    pub fn record_deadline_reject(&self) {
        self.inner.lock().counters.deadline_rejects += 1;
    }

    /// Records an idempotency-key dedup hit.
    pub fn record_idempotent_hit(&self) {
        self.inner.lock().counters.idempotent_hits += 1;
    }

    /// Records an accepted RPC connection.
    pub fn record_rpc_connection(&self) {
        self.inner.lock().counters.rpc_connections += 1;
    }

    /// Records a dispatched RPC request.
    pub fn record_rpc_request(&self) {
        self.inner.lock().counters.rpc_requests += 1;
    }

    /// Records an RPC frame rejected at the boundary (version, framing, or
    /// payload decode).
    pub fn record_rpc_rejected(&self) {
        self.inner.lock().counters.rpc_rejected += 1;
    }

    /// Records `n` lifecycle events streamed to a remote subscriber.
    pub fn record_rpc_events(&self, n: u64) {
        self.inner.lock().counters.rpc_events_streamed += n;
    }

    /// Records a drift episode detected by the twin reconciler.
    pub fn record_drift_detected(&self) {
        self.inner.lock().counters.drift_detected += 1;
    }

    /// Records a drift episode driven back to convergence, with its
    /// detection-to-convergence latency (MTTR sample).
    pub fn record_drift_repaired(&self, convergence_ms: u64) {
        let mut inner = self.inner.lock();
        inner.counters.drift_repaired += 1;
        inner.convergence_ms.push(convergence_ms);
    }

    /// Records a drift episode escalated to `Degraded`.
    pub fn record_drift_escalated(&self) {
        self.inner.lock().counters.drift_escalated += 1;
    }

    /// Copy of all drift-to-converged latency samples (ms), in completion
    /// order. The `reconcile` bench derives its MTTR distribution from
    /// these.
    pub fn convergence_samples(&self) -> Vec<u64> {
        self.inner.lock().convergence_ms.clone()
    }

    /// Appends a leadership/recovery event.
    pub fn record_event(&self, at_ms: u64, controller: &str, kind: &str) {
        self.inner.lock().events.push(Event {
            at_ms,
            controller: controller.to_owned(),
            kind: kind.to_owned(),
        });
    }

    /// Snapshot of the counters.
    pub fn counters(&self) -> Counters {
        self.inner.lock().counters
    }

    /// Copy of all transaction samples.
    pub fn samples(&self) -> Vec<TxnSample> {
        self.inner.lock().samples.clone()
    }

    /// Copy of all events.
    pub fn events(&self) -> Vec<Event> {
        self.inner.lock().events.clone()
    }

    /// Number of finalized transactions recorded.
    pub fn sample_count(&self) -> usize {
        self.inner.lock().samples.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busy_accumulates() {
        let m = Metrics::new();
        m.add_busy(Duration::from_millis(5));
        m.add_busy(Duration::from_millis(7));
        assert_eq!(m.busy(), Duration::from_millis(12));
    }

    #[test]
    fn txn_counters_by_state() {
        let m = Metrics::new();
        for (id, state) in [
            (1u64, TxnState::Committed),
            (2, TxnState::Committed),
            (3, TxnState::Aborted),
            (4, TxnState::Failed),
        ] {
            m.record_txn(TxnSample {
                id,
                submitted_ms: 0,
                finished_ms: 10,
                state,
                defer_count: 0,
            });
        }
        let c = m.counters();
        assert_eq!(c.committed, 2);
        assert_eq!(c.aborted, 1);
        assert_eq!(c.failed, 1);
        assert_eq!(m.sample_count(), 4);
    }

    #[test]
    fn latency_from_sample() {
        let s = TxnSample {
            id: 1,
            submitted_ms: 100,
            finished_ms: 350,
            state: TxnState::Committed,
            defer_count: 2,
        };
        assert_eq!(s.latency_ms(), 250);
    }

    #[test]
    fn events_recorded_in_order() {
        let m = Metrics::new();
        m.record_event(10, "c0", "leader-elected");
        m.record_event(25, "c0", "recovery-complete");
        let evs = m.events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].kind, "leader-elected");
        assert!(evs[0].at_ms < evs[1].at_ms);
    }

    #[test]
    fn drift_counters_and_convergence_samples() {
        let m = Metrics::new();
        m.record_drift_detected();
        m.record_drift_detected();
        m.record_drift_repaired(120);
        m.record_drift_escalated();
        let c = m.counters();
        assert_eq!(c.drift_detected, 2);
        assert_eq!(c.drift_repaired, 1);
        assert_eq!(c.drift_escalated, 1);
        assert_eq!(m.convergence_samples(), vec![120]);
        // Old counter snapshots (no drift fields) still deserialize.
        let legacy = br#"{"committed":1,"aborted":0,"failed":0,"defers":0,"violations":0,"checkpoints":0,"repairs":0,"reloads":0}"#;
        let back: Counters = serde_json::from_slice(legacy).unwrap();
        assert_eq!(back.committed, 1);
        assert_eq!(back.drift_detected, 0);
    }

    #[test]
    fn shared_clones_see_same_data() {
        let m = Metrics::new();
        let m2 = m.clone();
        m.record_defer();
        assert_eq!(m2.counters().defers, 1);
    }
}

//! Error types for the orchestration platform.

use std::fmt;

use tropic_model::{ConstraintViolation, ModelError, Path};

/// Errors surfaced while executing a stored procedure in the logical layer.
///
/// The variants map onto the paper's Figure-2 outcomes: a `Conflict` defers
/// the transaction (3B), a `Violation` or `Logic` error aborts it (3A).
#[derive(Debug, Clone, PartialEq)]
pub enum ProcError {
    /// A lock conflict with an outstanding transaction (paper 3B). The
    /// transaction is rolled back logically and retried later.
    Conflict(Path),
    /// A safety-constraint violation (paper 3A). The transaction aborts.
    Violation(ConstraintViolation),
    /// A procedure-level error: bad arguments, no capacity found, unknown
    /// action, or an action's logical effect failed. The transaction aborts.
    Logic(String),
    /// The procedure touched a subtree marked cross-layer inconsistent
    /// (paper §4): denied until reconciliation clears the marker.
    Inconsistent(Path),
    /// A data-model error while simulating.
    Model(ModelError),
}

impl fmt::Display for ProcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProcError::Conflict(p) => write!(f, "resource conflict at {p}"),
            ProcError::Violation(v) => write!(f, "{v}"),
            ProcError::Logic(s) => write!(f, "{s}"),
            ProcError::Inconsistent(p) => {
                write!(f, "resource at {p} is marked inconsistent; reconcile first")
            }
            ProcError::Model(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ProcError {}

impl From<ModelError> for ProcError {
    fn from(e: ModelError) -> Self {
        ProcError::Model(e)
    }
}

impl From<ConstraintViolation> for ProcError {
    fn from(v: ConstraintViolation) -> Self {
        ProcError::Violation(v)
    }
}

/// Platform-level errors returned to clients and operators.
#[derive(Debug, Clone, PartialEq)]
pub enum PlatformError {
    /// The coordination service failed or lost quorum.
    Coord(String),
    /// The named stored procedure is not registered.
    UnknownProcedure(String),
    /// Waiting for a transaction outcome timed out.
    Timeout,
    /// The platform is shutting down.
    ShuttingDown,
    /// An administrative operation (repair/reload) failed.
    Admin(String),
}

impl fmt::Display for PlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformError::Coord(s) => write!(f, "coordination error: {s}"),
            PlatformError::UnknownProcedure(name) => write!(f, "unknown procedure: {name}"),
            PlatformError::Timeout => write!(f, "timed out waiting for transaction outcome"),
            PlatformError::ShuttingDown => write!(f, "platform is shutting down"),
            PlatformError::Admin(s) => write!(f, "admin operation failed: {s}"),
        }
    }
}

impl std::error::Error for PlatformError {}

impl From<tropic_coord::CoordError> for PlatformError {
    fn from(e: tropic_coord::CoordError) -> Self {
        PlatformError::Coord(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proc_error_display() {
        let p = Path::parse("/vmRoot/h1").unwrap();
        assert!(ProcError::Conflict(p.clone())
            .to_string()
            .contains("conflict"));
        assert!(ProcError::Inconsistent(p).to_string().contains("reconcile"));
        assert!(ProcError::Logic("no host".into())
            .to_string()
            .contains("no host"));
    }

    #[test]
    fn conversions() {
        let m: ProcError = ModelError::RootImmutable.into();
        assert!(matches!(m, ProcError::Model(_)));
        let v: ProcError = ConstraintViolation {
            constraint: "c".into(),
            path: Path::root(),
            message: "m".into(),
        }
        .into();
        assert!(matches!(v, ProcError::Violation(_)));
    }

    #[test]
    fn platform_error_display() {
        assert!(PlatformError::UnknownProcedure("spawn".into())
            .to_string()
            .contains("spawn"));
        assert!(PlatformError::Timeout.to_string().contains("timed out"));
    }
}

//! Physical workers: the threads that straddle the controller/device
//! boundary (paper §2.2, §3.2).
//!
//! Each worker claims transactions from `phyQ` (exactly-once via the
//! queue's atomic delete), loads the execution log from the coordination
//! store, replays it against the devices (or skips them in logical-only
//! mode), and reports the outcome back through `inputQ`. Signals posted by
//! the controller are polled between actions so stalled transactions can be
//! TERMed or KILLed (paper §4).

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use tropic_coord::{CoordService, DistributedQueue};

use crate::api::Priority;
use crate::msg::{encode_input, layout, InputMsg, PhyTask, Signal};
use crate::physical::{execute_physical, ExecMode};
use crate::txn::TxnRecord;

/// Tuning knobs for a worker's queue behaviour.
#[derive(Clone, Debug)]
pub struct WorkerOptions {
    /// Claim up to [`WorkerOptions::claim_batch`] tasks in one atomic multi
    /// (group commit). Outcomes are still reported the moment each task
    /// finishes — withholding a finished result until its batch-mates
    /// execute would stretch commit latency and invite spurious TERM/KILL
    /// on already-committed work.
    pub group_commit: bool,
    /// Maximum tasks claimed per round when group commit is on. Small, so
    /// one worker cannot starve the others under load.
    pub claim_batch: usize,
    /// Initial idle wait when `phyQ` is empty.
    pub idle_backoff_start: Duration,
    /// Ceiling of the exponential idle backoff. A children watch still
    /// wakes the worker the moment an item lands, so long waits add no
    /// dispatch latency — they only shed idle re-polling load.
    pub idle_backoff_max: Duration,
}

impl Default for WorkerOptions {
    fn default() -> Self {
        WorkerOptions {
            group_commit: true,
            claim_batch: 4,
            idle_backoff_start: Duration::from_millis(50),
            idle_backoff_max: Duration::from_millis(1_600),
        }
    }
}

/// Runs one worker with default options until `stop` becomes true.
pub fn run_worker(name: &str, coord: &CoordService, mode: ExecMode, stop: &AtomicBool) {
    run_worker_with(name, coord, mode, stop, WorkerOptions::default());
}

/// Runs one worker until `stop` becomes true. Designed to be spawned on a
/// dedicated thread by the platform.
pub fn run_worker_with(
    name: &str,
    coord: &CoordService,
    mode: ExecMode,
    stop: &AtomicBool,
    opts: WorkerOptions,
) {
    let client = coord.connect(name);
    // Workers block inside device calls for arbitrarily long; a background
    // heartbeat keeps the session alive meanwhile (a crashed worker thread
    // still expires, because the keepalive guard dies with it).
    let _keepalive = client.keepalive();
    let Ok(phy_q) = DistributedQueue::new(&client, layout::phy_q()) else {
        return;
    };
    // Results ride the high-priority input lane: finalizing a running
    // transaction releases its locks, so results must never queue behind a
    // backlog of new batch submissions.
    let Ok(input_q) = DistributedQueue::new(&client, layout::input_lane(Priority::High)) else {
        return;
    };
    let mut idle_wait = opts.idle_backoff_start;
    while !stop.load(Ordering::SeqCst) {
        // Claim the head of the queue — everything already waiting, bounded,
        // in one atomic multi under group commit; one item at a time
        // otherwise.
        let claim = if opts.group_commit {
            phy_q.try_dequeue_batch(opts.claim_batch.max(1))
        } else {
            phy_q.try_dequeue().map(|item| item.into_iter().collect())
        };
        let claimed = match claim {
            Ok(items) if !items.is_empty() => {
                idle_wait = opts.idle_backoff_start;
                items
            }
            Ok(_) => {
                // Idle: wait behind one children watch, backing off
                // exponentially while the queue stays empty. The wait is
                // stop-aware, so long backoffs never delay shutdown.
                let _ = phy_q.await_items(idle_wait, stop);
                idle_wait = (idle_wait * 2).min(opts.idle_backoff_max);
                continue;
            }
            Err(_) => {
                // Quorum loss or session trouble: wait behind the same
                // children watch as the idle path instead of bare-sleeping,
                // so recovery wakes the worker the instant an item lands.
                // When even the watch cannot be armed (store unreachable),
                // fall back to a stop-aware pause at the current backoff.
                if phy_q.await_items(idle_wait, stop).is_err() {
                    let deadline = std::time::Instant::now() + idle_wait;
                    while std::time::Instant::now() < deadline && !stop.load(Ordering::SeqCst) {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                }
                idle_wait = (idle_wait * 2).min(opts.idle_backoff_max);
                continue;
            }
        };
        for (_, item) in claimed {
            let Ok(task) = serde_json::from_slice::<PhyTask>(&item) else {
                continue;
            };
            let Ok(Some(rec)) = client.get_json::<TxnRecord>(&layout::txn(task.id)) else {
                // Record GC'd or unreadable; nothing to execute.
                continue;
            };
            let signal_path = layout::signal(task.id);
            let outcome = execute_physical(&rec.log, &mode, || {
                client.get_json::<Signal>(&signal_path).ok().flatten()
            });
            let msg = InputMsg::Result {
                id: task.id,
                outcome,
            };
            // Best-effort, and immediately per task: if the enqueue fails
            // (quorum loss), the transaction stalls and the controller's
            // TERM/KILL timeouts take over — the paper's answer to
            // unresponsive transactions.
            let _ = input_q.enqueue(encode_input(msg));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::txn::{LogRecord, TxnState};
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;
    use tropic_coord::CoordConfig;
    use tropic_model::{Path, Value};

    fn spawn_worker(
        coord: Arc<CoordService>,
        mode: ExecMode,
        stop: Arc<AtomicBool>,
    ) -> std::thread::JoinHandle<()> {
        std::thread::spawn(move || run_worker("w-test", &coord, mode, &stop))
    }

    #[test]
    fn worker_executes_task_and_reports() {
        let coord = Arc::new(CoordService::start(CoordConfig::default()));
        let client = coord.connect("test");
        // Persist a Started record with a trivial log.
        let mut rec = TxnRecord::new(5, "noop", vec![], 0);
        rec.state = TxnState::Started;
        rec.log = vec![LogRecord {
            seq: 1,
            object: Path::parse("/x").unwrap(),
            action: "anything".into(),
            args: vec![Value::from("a")],
            undo_action: Some("undoAnything".into()),
            undo_object: None,
            undo_args: vec![],
            best_effort: false,
        }];
        client.put_json(&layout::txn(5), &rec).unwrap();
        let phy_q = DistributedQueue::new(&client, layout::phy_q()).unwrap();
        phy_q
            .enqueue(serde_json::to_vec(&PhyTask { id: 5 }).unwrap())
            .unwrap();

        let stop = Arc::new(AtomicBool::new(false));
        let handle = spawn_worker(Arc::clone(&coord), ExecMode::LogicalOnly, Arc::clone(&stop));

        // The result lands in the high-priority input lane.
        let input_q = DistributedQueue::new(&client, layout::input_lane(Priority::High)).unwrap();
        let got = input_q.dequeue_timeout(Duration::from_secs(5)).unwrap();
        stop.store(true, Ordering::SeqCst);
        handle.join().unwrap();
        let (_, data) = got.expect("worker result");
        let msg: InputMsg = crate::msg::decode_input(&data).unwrap();
        match msg {
            InputMsg::Result { id, outcome } => {
                assert_eq!(id, 5);
                assert_eq!(outcome, crate::physical::PhysicalOutcome::Committed);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn worker_batch_claims_and_reports_all_tasks() {
        let coord = Arc::new(CoordService::start(CoordConfig::default()));
        let client = coord.connect("test");
        let phy_q = DistributedQueue::new(&client, layout::phy_q()).unwrap();
        for id in 1..=3u64 {
            let mut rec = TxnRecord::new(id, "noop", vec![], 0);
            rec.state = TxnState::Started;
            client.put_json(&layout::txn(id), &rec).unwrap();
            phy_q
                .enqueue(serde_json::to_vec(&PhyTask { id }).unwrap())
                .unwrap();
        }

        let stop = Arc::new(AtomicBool::new(false));
        let handle = spawn_worker(Arc::clone(&coord), ExecMode::LogicalOnly, Arc::clone(&stop));

        let input_q = DistributedQueue::new(&client, layout::input_lane(Priority::High)).unwrap();
        let mut seen = Vec::new();
        while seen.len() < 3 {
            let (_, data) = input_q
                .dequeue_timeout(Duration::from_secs(5))
                .unwrap()
                .expect("worker result");
            match crate::msg::decode_input(&data).unwrap() {
                InputMsg::Result { id, outcome } => {
                    assert_eq!(outcome, crate::physical::PhysicalOutcome::Committed);
                    seen.push(id);
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        stop.store(true, Ordering::SeqCst);
        handle.join().unwrap();
        seen.sort_unstable();
        assert_eq!(seen, vec![1, 2, 3]);
        assert!(phy_q.is_empty().unwrap());
    }

    #[test]
    fn worker_ignores_corrupt_tasks() {
        let coord = Arc::new(CoordService::start(CoordConfig::default()));
        let client = coord.connect("test");
        let phy_q = DistributedQueue::new(&client, layout::phy_q()).unwrap();
        phy_q.enqueue(&b"not json"[..]).unwrap();

        let stop = Arc::new(AtomicBool::new(false));
        let handle = spawn_worker(Arc::clone(&coord), ExecMode::LogicalOnly, Arc::clone(&stop));
        std::thread::sleep(Duration::from_millis(200));
        stop.store(true, Ordering::SeqCst);
        handle.join().unwrap();
        // The corrupt item was consumed and produced no result.
        assert!(phy_q.is_empty().unwrap());
        let input_q = DistributedQueue::new(&client, layout::input_lane(Priority::High)).unwrap();
        assert!(input_q.is_empty().unwrap());
    }
}

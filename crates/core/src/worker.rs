//! Physical workers: the threads that straddle the controller/device
//! boundary (paper §2.2, §3.2).
//!
//! Each worker claims transactions from `phyQ` (exactly-once via the
//! queue's atomic delete), loads the execution log from the coordination
//! store, replays it against the devices (or skips them in logical-only
//! mode), and reports the outcome back through `inputQ`. Signals posted by
//! the controller are polled between actions so stalled transactions can be
//! TERMed or KILLed (paper §4).

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use tropic_coord::{CoordService, DistributedQueue};

use crate::msg::{layout, InputMsg, PhyTask, Signal};
use crate::physical::{execute_physical, ExecMode};
use crate::txn::TxnRecord;

/// Runs one worker until `stop` becomes true. Designed to be spawned on a
/// dedicated thread by the platform.
pub fn run_worker(name: &str, coord: &CoordService, mode: ExecMode, stop: &AtomicBool) {
    let client = coord.connect(name);
    // Workers block inside device calls for arbitrarily long; a background
    // heartbeat keeps the session alive meanwhile (a crashed worker thread
    // still expires, because the keepalive guard dies with it).
    let _keepalive = client.keepalive();
    let Ok(phy_q) = DistributedQueue::new(&client, layout::phy_q()) else {
        return;
    };
    let Ok(input_q) = DistributedQueue::new(&client, layout::input_q()) else {
        return;
    };
    while !stop.load(Ordering::SeqCst) {
        let item = match phy_q.dequeue_timeout(Duration::from_millis(50)) {
            Ok(Some((_, data))) => data,
            Ok(None) => continue,
            Err(_) => {
                // Quorum loss or session trouble; back off briefly.
                std::thread::sleep(Duration::from_millis(20));
                continue;
            }
        };
        let Ok(task) = serde_json::from_slice::<PhyTask>(&item) else {
            continue;
        };
        let Ok(Some(rec)) = client.get_json::<TxnRecord>(&layout::txn(task.id)) else {
            // Record GC'd or unreadable; nothing to execute.
            continue;
        };
        let signal_path = layout::signal(task.id);
        let outcome = execute_physical(&rec.log, &mode, || {
            client.get_json::<Signal>(&signal_path).ok().flatten()
        });
        let msg = InputMsg::Result {
            id: task.id,
            outcome,
        };
        // Best-effort: if the enqueue fails (quorum loss), the transaction
        // stalls and the controller's TERM/KILL timeouts take over — the
        // paper's answer to unresponsive transactions.
        let _ = input_q.enqueue(serde_json::to_vec(&msg).expect("serializable"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::txn::{LogRecord, TxnState};
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;
    use tropic_coord::CoordConfig;
    use tropic_model::{Path, Value};

    fn spawn_worker(
        coord: Arc<CoordService>,
        mode: ExecMode,
        stop: Arc<AtomicBool>,
    ) -> std::thread::JoinHandle<()> {
        std::thread::spawn(move || run_worker("w-test", &coord, mode, &stop))
    }

    #[test]
    fn worker_executes_task_and_reports() {
        let coord = Arc::new(CoordService::start(CoordConfig::default()));
        let client = coord.connect("test");
        // Persist a Started record with a trivial log.
        let mut rec = TxnRecord::new(5, "noop", vec![], 0);
        rec.state = TxnState::Started;
        rec.log = vec![LogRecord {
            seq: 1,
            object: Path::parse("/x").unwrap(),
            action: "anything".into(),
            args: vec![Value::from("a")],
            undo_action: Some("undoAnything".into()),
            undo_object: None,
            undo_args: vec![],
        }];
        client.put_json(&layout::txn(5), &rec).unwrap();
        let phy_q = DistributedQueue::new(&client, layout::phy_q()).unwrap();
        phy_q
            .enqueue(serde_json::to_vec(&PhyTask { id: 5 }).unwrap())
            .unwrap();

        let stop = Arc::new(AtomicBool::new(false));
        let handle = spawn_worker(Arc::clone(&coord), ExecMode::LogicalOnly, Arc::clone(&stop));

        // The result lands in inputQ.
        let input_q = DistributedQueue::new(&client, layout::input_q()).unwrap();
        let got = input_q.dequeue_timeout(Duration::from_secs(5)).unwrap();
        stop.store(true, Ordering::SeqCst);
        handle.join().unwrap();
        let (_, data) = got.expect("worker result");
        let msg: InputMsg = serde_json::from_slice(&data).unwrap();
        match msg {
            InputMsg::Result { id, outcome } => {
                assert_eq!(id, 5);
                assert_eq!(outcome, crate::physical::PhysicalOutcome::Committed);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn worker_ignores_corrupt_tasks() {
        let coord = Arc::new(CoordService::start(CoordConfig::default()));
        let client = coord.connect("test");
        let phy_q = DistributedQueue::new(&client, layout::phy_q()).unwrap();
        phy_q.enqueue(&b"not json"[..]).unwrap();

        let stop = Arc::new(AtomicBool::new(false));
        let handle = spawn_worker(Arc::clone(&coord), ExecMode::LogicalOnly, Arc::clone(&stop));
        std::thread::sleep(Duration::from_millis(200));
        stop.store(true, Ordering::SeqCst);
        handle.join().unwrap();
        // The corrupt item was consumed and produced no result.
        assert!(phy_q.is_empty().unwrap());
        let input_q = DistributedQueue::new(&client, layout::input_q()).unwrap();
        assert!(input_q.is_empty().unwrap());
    }
}

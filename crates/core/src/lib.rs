//! # tropic-core
//!
//! The TROPIC transactional resource-orchestration platform (Liu, Mao,
//! Chen, Fernández, Loo, Van der Merwe — USENIX ATC 2012), reproduced in
//! Rust.
//!
//! Orchestration procedures execute as ACID transactions over a
//! hierarchical data model:
//!
//! * **Atomicity** — execution logs with per-action undo; physical failures
//!   roll back in reverse order ([`physical`]).
//! * **Consistency** — integrity constraints checked after every simulated
//!   action in the logical layer ([`logical`], [`proc`]).
//! * **Isolation** — hierarchical R/W/IR/IW locking with constraint read
//!   locks ([`locks`]).
//! * **Durability** — every transaction state transition persists in the
//!   replicated coordination store before the step it enables
//!   ([`controller`]).
//!
//! The platform runs replicated controllers behind quorum leader election;
//! failover recovers the leader's state from persistent storage without
//! losing transactions ([`Tropic`]). Cross-layer drift caused by volatile
//! resources is reconciled with `repair` and `reload` ([`reconcile`]), and
//! stalled transactions are TERMed/KILLed ([`msg::Signal`]).

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

pub mod actions;
pub mod api;
pub mod config;
pub mod controller;
pub mod error;
pub mod locks;
pub mod logical;
pub mod msg;
pub mod physical;
pub mod proc;
pub mod reconcile;
pub mod rpc;
pub mod stats;
pub mod twin;
pub mod txn;
pub mod worker;

mod platform;

pub use actions::{ActionDef, ActionRegistry, UndoSpec};
pub use api::{
    AbortCode, AdminClient, ApiError, Priority, Subscription, TxnEvent, TxnHandle, TxnRequest,
};
pub use config::{PlatformConfig, RpcConfig, ServiceDefinition, TwinConfig};
pub use controller::{Checkpoint, Controller, ControllerConfig};
pub use error::{PlatformError, ProcError};
pub use locks::{with_intentions, LockConflict, LockManager, LockMode, LockRequest};
pub use logical::{rollback_logical, simulate, LogicalOutcome};
pub use msg::{
    decode_input, encode_input, layout, AdminResult, Envelope, InputMsg, PhyTask, Signal,
    WireError, WIRE_VERSION,
};
pub use physical::{execute_physical, ExecMode, PhysicalOutcome};
pub use platform::{Tropic, TropicClient};
pub use proc::{FnProcedure, ProcRegistry, StoredProcedure, TxnContext};
pub use reconcile::{RepairPlan, RepairRules};
pub use rpc::{RemoteAdmin, RemoteClient, RemoteHandle, RemoteSubscription, RpcServer};
pub use stats::{Counters, Event, Metrics, TxnSample};
pub use twin::{
    backoff_delay_ms, drift_fingerprint, repair_fixpoint, DriftObservation, SyncRepairOutcome,
    TwinEvent, TwinFeed, TwinPhase, TwinSubscription, TwinTracker, TWIN_REPAIR_PROC,
};
pub use txn::{format_execution_log, LogRecord, TxnAlias, TxnId, TxnOutcome, TxnRecord, TxnState};
pub use worker::{run_worker, run_worker_with, WorkerOptions};

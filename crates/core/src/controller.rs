//! The TROPIC controller: the logical layer's single active brain
//! (paper §2.2, §3.1).
//!
//! Exactly one controller (the election leader) consumes `inputQ`, runs
//! logical execution, feeds `phyQ`, and finalizes transactions from worker
//! results. Every state transition is persisted to the coordination store
//! *before* the step it enables, so any follower can resume from persistent
//! state alone — the controller's in-memory tree, lock table, and queues are
//! a cache (paper §2.3).
//!
//! ## Group commit
//!
//! With [`ControllerConfig::group_commit`] enabled (the default), the hot
//! path's writes — transaction records, `inputQ` removals, `phyQ` moves —
//! accumulate in a round batch over one scheduling round and flush as a
//! single atomic coordination-store multi. A follower resuming from
//! persistent state therefore sees either the whole round or none of it,
//! which is strictly stronger than the record-at-a-time window, and the
//! replicated log pays its (dominant, §6.1) per-write cost once per round
//! instead of once per record.

use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

use tropic_coord::{CoordClient, CoordError, CreateMode, DistributedQueue, Op};
use tropic_model::{Path, SharedClock, Tree, Value};

use tropic_devices::StateReport;

use crate::actions::{ActionDef, ActionRegistry};
use crate::api::{AbortCode, Priority};
use crate::config::{ServiceDefinition, TwinConfig};
use crate::error::{PlatformError, ProcError};
use crate::locks::LockManager;
use crate::logical::{rollback_logical, simulate, LogicalOutcome};
use crate::msg::{decode_input, encode_input, layout, AdminResult, InputMsg, PhyTask, Signal};
use crate::physical::{ExecMode, PhysicalOutcome};
use crate::proc::{FnProcedure, StoredProcedure};
use crate::stats::{Metrics, TxnSample};
use crate::twin::{
    drift_fingerprint, repair_fixpoint, TwinEvent, TwinFeed, TwinPhase, TwinTracker,
    TWIN_REPAIR_PROC, TWIN_TXN_BASE,
};
use crate::txn::{LogRecord, TxnAlias, TxnId, TxnRecord, TxnState};

/// Transaction-id namespace for controller-internal records (reloads), kept
/// disjoint from client-assigned ids.
pub(crate) const ADMIN_TXN_BASE: TxnId = 1 << 62;

/// The persisted logical-layer checkpoint.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct Checkpoint {
    /// JSON snapshot of the logical tree.
    pub snapshot: String,
    /// Every transaction with `lsn <= watermark` is fully reflected in the
    /// snapshot; recovery replays only logs above it.
    pub watermark_lsn: u64,
}

/// Per-controller configuration (derived from the platform config).
#[derive(Clone, Debug)]
pub struct ControllerConfig {
    /// Controller name (diagnostics, election payload).
    pub name: String,
    /// Finalized transactions between checkpoints (0 = bootstrap only).
    pub checkpoint_every: u64,
    /// Grace period before finalized records are garbage collected.
    pub gc_grace_ms: u64,
    /// TERM stalled transactions after this long.
    pub term_timeout_ms: Option<u64>,
    /// KILL stalled transactions after this long.
    pub kill_timeout_ms: Option<u64>,
    /// Idle-wait granularity.
    pub poll_ms: u64,
    /// Accumulate each scheduling round's writes and flush them as one
    /// atomic multi (group commit) instead of per-record writes.
    pub group_commit: bool,
    /// Input-queue messages admitted per scheduling round, across lanes.
    pub input_batch: usize,
    /// Digital-twin reconciliation settings ([`crate::twin`]).
    pub twin: TwinConfig,
    /// Platform-shared twin event hub; phase transitions publish here.
    pub twin_feed: TwinFeed,
}

/// The group-commit write buffer: one scheduling round's record puts, queue
/// removals, and queue appends, flushed as a single atomic multi. Repeated
/// puts to the same path coalesce (a record accepted and started in the
/// same round persists once, already `Started`); within a round the
/// controller's in-memory state is authoritative, and a crash before the
/// flush simply re-runs the round from the pre-round persistent state.
struct RoundBatch {
    enabled: bool,
    ops: Vec<Op>,
    /// Index into `ops` of the coalescible put for a path.
    puts: HashMap<Path, usize>,
}

impl RoundBatch {
    fn new(enabled: bool) -> Self {
        RoundBatch {
            enabled,
            ops: Vec::new(),
            puts: HashMap::new(),
        }
    }

    fn enabled(&self) -> bool {
        self.enabled
    }

    /// Buffers a full-data write. `exists` picks create vs. set for the
    /// first put of a path; later puts in the round overwrite its payload.
    fn put(&mut self, path: Path, data: Vec<u8>, exists: bool) {
        if let Some(&i) = self.puts.get(&path) {
            match &mut self.ops[i] {
                Op::Create { data: d, .. } | Op::SetData { data: d, .. } => *d = data.into(),
                other => unreachable!("puts index points at a non-put op {other:?}"),
            }
            return;
        }
        let op = if exists {
            Op::SetData {
                path: path.clone(),
                data: data.into(),
                expected_version: None,
            }
        } else {
            Op::Create {
                path: path.clone(),
                data: data.into(),
                ephemeral_owner: None,
                sequential: false,
            }
        };
        self.puts.insert(path, self.ops.len());
        self.ops.push(op);
    }

    /// Buffers a deletion of a path this leader exclusively owns.
    fn delete(&mut self, path: Path) {
        self.puts.remove(&path);
        self.ops.push(Op::Delete {
            path,
            expected_version: None,
        });
    }

    /// Buffers an arbitrary op (sequential queue appends).
    fn push(&mut self, op: Op) {
        self.ops.push(op);
    }

    fn take(&mut self) -> Vec<Op> {
        self.puts.clear();
        std::mem::take(&mut self.ops)
    }
}

/// The controller state machine. Owns the logical tree and lock table; talks
/// to the rest of the platform exclusively through the coordination client.
pub struct Controller<'a> {
    cfg: ControllerConfig,
    client: &'a CoordClient,
    service: Arc<ServiceDefinition>,
    actions: ActionRegistry,
    mode: ExecMode,
    clock: SharedClock,
    metrics: Metrics,

    tree: Tree,
    locks: LockManager,
    /// Per-priority `todoQ` lanes (index = [`Priority::index`]), each FIFO
    /// with paper-faithful head-of-line blocking *within* the lane; a
    /// deferred head blocks only its own lane.
    todo: [VecDeque<TxnId>; 3],
    records: HashMap<TxnId, TxnRecord>,
    running: HashSet<TxnId>,
    started_at: HashMap<TxnId, u64>,
    term_signaled: HashSet<TxnId>,
    inconsistent: BTreeSet<Path>,
    next_lsn: u64,
    finalized_since_ckpt: u64,
    gc_queue: VecDeque<(TxnId, u64)>,
    batch: RoundBatch,
    /// Transaction ids whose record znode exists (create vs. set hint).
    persisted: HashSet<TxnId>,
    /// Whether the inconsistent-set znode exists yet.
    inconsistent_persisted: bool,
    /// Idempotency-key → admitted transaction id (dedup window = record
    /// retention).
    idemp: HashMap<String, TxnId>,
    /// Alias id → original id, for redelivery dedup.
    alias_targets: HashMap<TxnId, TxnId>,
    /// Original id → alias ids pointing at it, for GC.
    aliases_of: HashMap<TxnId, Vec<TxnId>>,
    /// Per-resource twin state machine (drift episodes, backoff waker).
    twin: TwinTracker,
    /// The controller-internal `__twinRepair` procedure (physical mode
    /// only): plans corrective actions against fresh physical state.
    twin_proc: Option<Arc<dyn StoredProcedure>>,
    /// Cached reported state per mount, refreshed when the twin epoch
    /// moves.
    twin_reported: HashMap<Path, StateReport>,
    /// Last twin epoch the cache reflects.
    twin_epoch_seen: Option<u64>,
    /// Platform-clock timestamp of the last reconciliation pass.
    twin_last_tick_ms: u64,
    /// Next twin transaction sequence (id = `TWIN_TXN_BASE + seq`).
    twin_next_seq: u64,
    /// Mount → in-flight twin repair transaction, so re-detection never
    /// stacks a second repair behind one already holding the scope's locks.
    twin_inflight: HashMap<Path, TxnId>,
}

impl<'a> Controller<'a> {
    /// Creates a controller bound to a coordination client. Call
    /// [`Controller::recover`] before stepping.
    pub fn new(
        cfg: ControllerConfig,
        client: &'a CoordClient,
        service: Arc<ServiceDefinition>,
        mode: ExecMode,
        clock: SharedClock,
        metrics: Metrics,
    ) -> Self {
        let mut actions = service.actions.clone();
        register_builtin_actions(&mut actions);
        let group_commit = cfg.group_commit;
        let twin = TwinTracker::new(&cfg.twin);
        // The twin's corrective procedure: diff the logical tree against
        // *fresh* physical state (never the possibly-stale report that
        // triggered detection) and log the planned repairs. Physical mode
        // only — logical-only platforms have nothing to repair.
        let twin_proc: Option<Arc<dyn StoredProcedure>> =
            mode.registry().cloned().map(|registry| {
                let svc = Arc::clone(&service);
                Arc::new(FnProcedure::new(TWIN_REPAIR_PROC, move |ctx| {
                    let scope = Path::parse(&ctx.arg_str(0)?)
                        .map_err(|e| ProcError::Logic(format!("bad repair scope: {e}")))?;
                    let physical = registry
                        .physical_subtree(&scope)
                        .ok_or_else(|| ProcError::Logic(format!("no physical state at {scope}")))?;
                    ctx.reconcile(&scope, &physical, &svc.repair_rules)?;
                    Ok(())
                })) as Arc<dyn StoredProcedure>
            });
        Controller {
            cfg,
            client,
            service,
            actions,
            mode,
            clock,
            metrics,
            tree: Tree::new(),
            locks: LockManager::new(),
            todo: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
            records: HashMap::new(),
            running: HashSet::new(),
            started_at: HashMap::new(),
            term_signaled: HashSet::new(),
            inconsistent: BTreeSet::new(),
            next_lsn: 1,
            finalized_since_ckpt: 0,
            gc_queue: VecDeque::new(),
            batch: RoundBatch::new(group_commit),
            persisted: HashSet::new(),
            inconsistent_persisted: false,
            idemp: HashMap::new(),
            alias_targets: HashMap::new(),
            aliases_of: HashMap::new(),
            twin,
            twin_proc,
            twin_reported: HashMap::new(),
            twin_epoch_seen: None,
            twin_last_tick_ms: 0,
            twin_next_seq: 1,
            twin_inflight: HashMap::new(),
        }
    }

    /// Read-only view of the logical tree (tests and experiments).
    pub fn tree(&self) -> &Tree {
        &self.tree
    }

    /// Number of transactions waiting across all `todoQ` lanes.
    pub fn todo_len(&self) -> usize {
        self.todo.iter().map(VecDeque::len).sum()
    }

    /// Number of transactions in physical execution.
    pub fn running_len(&self) -> usize {
        self.running.len()
    }

    // ------------------------------------------------------------------
    // Recovery (paper §2.3): restore the previous leader's state from the
    // coordination store, idempotently.
    // ------------------------------------------------------------------

    /// Restores controller state from persistent storage. On the very first
    /// leadership in a fresh deployment, bootstraps the checkpoint from the
    /// service's initial tree.
    pub fn recover(&mut self) -> Result<(), PlatformError> {
        self.client.create_all(&layout::txns())?;
        self.client.create_all(&layout::election())?;
        // Queue roots must exist before the round batch appends items to
        // them (batched creates have no create-parents fallback).
        self.client.create_all(&layout::input_q())?;
        for p in Priority::ALL {
            self.client.create_all(&layout::input_lane(p))?;
        }
        self.client.create_all(&layout::phy_q())?;
        self.batch.take();
        self.persisted.clear();
        self.inconsistent_persisted = self.client.exists(&layout::inconsistent())?;

        // 1. Logical tree from the checkpoint (or bootstrap).
        let ckpt: Option<Checkpoint> = self.client.get_json(&layout::checkpoint())?;
        let watermark = match ckpt {
            Some(ckpt) => {
                self.tree = Tree::from_snapshot(&ckpt.snapshot)
                    .map_err(|e| PlatformError::Admin(format!("corrupt checkpoint: {e}")))?;
                ckpt.watermark_lsn
            }
            None => {
                self.tree = self.service.initial_tree.clone();
                self.service
                    .schemas
                    .validate(&self.tree)
                    .map_err(|e| PlatformError::Admin(format!("initial tree invalid: {e}")))?;
                let ckpt = Checkpoint {
                    snapshot: self
                        .tree
                        .to_snapshot()
                        .map_err(|e| PlatformError::Admin(e.to_string()))?,
                    watermark_lsn: 0,
                };
                self.client.put_json(&layout::checkpoint(), &ckpt)?;
                0
            }
        };
        self.next_lsn = watermark + 1;

        // 2. Load every persisted transaction record, and rebuild the
        // idempotency index and alias table from them (idempotency keys
        // live on the records; aliases are persisted at the aliased id's
        // record path).
        self.records.clear();
        self.idemp.clear();
        self.alias_targets.clear();
        self.aliases_of.clear();
        for child in self.client.get_children(&layout::txns())? {
            let path = layout::txns().join(&child);
            if let Some(rec) = self.client.get_json::<TxnRecord>(&path)? {
                if let Some(key) = &rec.idempotency_key {
                    self.idemp.insert(key.clone(), rec.id);
                }
                self.persisted.insert(rec.id);
                self.records.insert(rec.id, rec);
            } else if let (Ok(alias_id), Some(alias)) = (
                child.parse::<TxnId>(),
                self.client.get_json::<TxnAlias>(&path)?,
            ) {
                self.alias_targets.insert(alias_id, alias.alias_of);
                self.aliases_of
                    .entry(alias.alias_of)
                    .or_default()
                    .push(alias_id);
            }
        }

        // 3. Replay logical effects above the watermark in lsn order.
        let mut replay: Vec<&TxnRecord> = self
            .records
            .values()
            .filter(|r| r.lsn.map(|l| l > watermark).unwrap_or(false))
            .collect();
        replay.sort_by_key(|r| r.lsn);
        let replay: Vec<TxnRecord> = replay.into_iter().cloned().collect();
        let now = self.clock.now_ms();
        for rec in &replay {
            let lsn = rec.lsn.expect("filtered on lsn");
            // Twin repair logs carry *physical* corrections only — their
            // device actions were never applied logically (the logical tree
            // already holds desired state), so replaying them would corrupt
            // it. Skip the log; lock/running bookkeeping below still runs.
            let logical_log = rec.proc_name != TWIN_REPAIR_PROC;
            if logical_log {
                for log_rec in &rec.log {
                    if let Some(def) = self.actions.get(&log_rec.action) {
                        // Replay failures mean the persistent log disagrees
                        // with the snapshot; quarantine the object rather
                        // than halt.
                        if def
                            .apply_logical(&mut self.tree, &log_rec.object, &log_rec.args)
                            .is_err()
                        {
                            let _ = self.tree.mark_inconsistent(&log_rec.object, true);
                            self.inconsistent.insert(log_rec.object.clone());
                        }
                    }
                }
            }
            match rec.state {
                // In-flight at crash time: effects stay, locks are
                // re-acquired, and the worker's result will arrive later.
                TxnState::Started => {
                    let _ = self.locks.try_acquire(rec.id, &rec.locks);
                    self.running.insert(rec.id);
                    self.started_at.insert(rec.id, now);
                }
                // Finalized by rollback before the crash: reapply it.
                TxnState::Aborted | TxnState::Failed if logical_log => {
                    let _ = rollback_logical(&rec.log, &mut self.tree, &self.actions);
                }
                _ => {}
            }
            self.next_lsn = self.next_lsn.max(lsn + 1);
        }

        // Resume the twin transaction-id sequence above every persisted
        // twin record, so re-submissions after failover never collide.
        self.twin_next_seq = self
            .records
            .keys()
            .chain(self.alias_targets.keys())
            .filter(|&&id| id >= TWIN_TXN_BASE)
            .map(|&id| id - TWIN_TXN_BASE + 1)
            .max()
            .unwrap_or(1);
        self.twin_inflight.clear();
        self.twin_epoch_seen = None;
        self.twin_reported.clear();

        // 4. Re-mark persisted inconsistencies.
        if let Some(paths) = self.client.get_json::<Vec<Path>>(&layout::inconsistent())? {
            for p in paths {
                let _ = self.tree.mark_inconsistent(&p, true);
                self.inconsistent.insert(p);
            }
        }

        // 5. Rebuild the todoQ lanes from accepted-but-unscheduled
        // transactions, each in admission (id) order within its lane.
        let mut accepted: Vec<(Priority, TxnId)> = self
            .records
            .values()
            .filter(|r| r.state == TxnState::Accepted)
            .map(|r| (r.priority, r.id))
            .collect();
        accepted.sort_unstable_by_key(|(_, id)| *id);
        self.todo = [VecDeque::new(), VecDeque::new(), VecDeque::new()];
        for (priority, id) in accepted {
            self.todo[priority.index()].push_back(id);
        }

        // 6. Schedule GC for already-finalized records.
        for rec in self.records.values() {
            if rec.state.is_final() {
                self.gc_queue.push_back((rec.id, now));
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // The leader loop body.
    // ------------------------------------------------------------------

    /// Performs one unit of controller work: drains a batch of `inputQ`
    /// messages, schedules from `todoQ`, checks stalled-transaction
    /// timeouts, and checkpoints when due. Returns `true` if any message was
    /// processed or transaction scheduled (callers idle-wait when `false`).
    pub fn step(&mut self) -> Result<bool, PlatformError> {
        let processed = self.process_input(self.cfg.input_batch.max(1))?;
        let scheduled = self.schedule()?;
        let reconciled = self.twin_tick()?;
        self.check_timeouts()?;
        // The group-commit flush: everything the round decided becomes
        // durable — and visible to workers and clients — atomically, before
        // any step it enables (checkpointing covers only flushed state).
        self.flush_round()?;
        self.maybe_checkpoint()?;
        Ok(processed > 0 || scheduled > 0 || reconciled > 0)
    }

    /// Flushes the round's buffered writes as one atomic multi. On failure
    /// the in-memory state is ahead of persistence; the caller resigns
    /// leadership and the next leader recovers from the pre-round state, so
    /// the store never exposes a partial round.
    fn flush_round(&mut self) -> Result<(), PlatformError> {
        let ops = self.batch.take();
        if !ops.is_empty() {
            self.client.multi(ops)?;
        }
        Ok(())
    }

    /// Blocks until any input lane (or the legacy queue root) has an item
    /// or `timeout` passes. Uses one children watch per lane so idling
    /// costs no polling writes. The lane bases exist from
    /// [`Controller::recover`], so the queues bind without probing.
    pub fn wait_for_input(&self, timeout: Duration) {
        let hi = DistributedQueue::bind(self.client, layout::input_lane(Priority::High));
        let norm = DistributedQueue::bind(self.client, layout::input_lane(Priority::Normal));
        let batch = DistributedQueue::bind(self.client, layout::input_lane(Priority::Batch));
        let legacy = DistributedQueue::bind(self.client, layout::input_q());
        let no_stop = std::sync::atomic::AtomicBool::new(false);
        let _ = DistributedQueue::await_any(&[&hi, &norm, &batch, &legacy], timeout, &no_stop);
    }

    /// Drains up to `max` messages, strictly by lane: the high lane is
    /// emptied before the normal lane is touched, and so on. The legacy
    /// un-versioned queue root drains at *normal* priority (legacy
    /// messages decode as `Priority::Normal`, and pre-upgrade workers
    /// still report results there — parking it below the batch lane
    /// would let a sustained batch backlog starve them during a rolling
    /// upgrade). Within a lane, FIFO.
    fn process_input(&mut self, max: usize) -> Result<usize, PlatformError> {
        let mut handled = 0;
        let bases = [
            layout::input_lane(Priority::High),
            layout::input_lane(Priority::Normal),
            layout::input_q(),
            layout::input_lane(Priority::Batch),
        ];
        for base in bases {
            if handled >= max {
                break;
            }
            let q = DistributedQueue::bind(self.client, base);
            // One listing per lane per round: under group commit the
            // removals are buffered until the flush, so a peek loop would
            // re-serve the same head forever.
            let mut names = q.item_names()?;
            names.truncate(max - handled);
            for name in names {
                let Some(data) = q.get(&name)? else {
                    continue;
                };
                match decode_input(&data) {
                    Ok(msg) => self.handle_msg(msg)?,
                    Err(_) => {
                        self.metrics.record_event(
                            self.clock.now_ms(),
                            &self.cfg.name,
                            "corrupt-input-dropped",
                        );
                    }
                }
                if self.batch.enabled() {
                    self.batch.delete(q.item_path(&name));
                } else {
                    q.remove(&name)?;
                }
                handled += 1;
            }
        }
        Ok(handled)
    }

    fn handle_msg(&mut self, msg: InputMsg) -> Result<(), PlatformError> {
        match msg {
            InputMsg::Submit {
                id,
                proc_name,
                args,
                submitted_ms,
                priority,
                deadline_ms,
                idempotency_key,
                labels,
            } => {
                let mut rec = TxnRecord::new(id, proc_name, args, submitted_ms);
                rec.priority = priority;
                rec.deadline_ms = deadline_ms;
                rec.idempotency_key = idempotency_key;
                rec.labels = labels;
                self.handle_submit(rec)
            }
            InputMsg::Result { id, outcome } => self.handle_result(id, outcome),
            InputMsg::Signal { id, signal } => self.handle_signal(id, signal),
            InputMsg::Repair { scope, admin_id } => self.handle_repair(scope, admin_id),
            InputMsg::Reload { scope, admin_id } => self.handle_reload(scope, admin_id),
        }
    }

    /// Step 2 of the paper's Figure 2, extended with the admission gate:
    /// idempotency-key dedup first, then the deadline check, then
    /// acceptance into the priority's `todoQ` lane.
    fn handle_submit(&mut self, mut rec: TxnRecord) -> Result<(), PlatformError> {
        let id = rec.id;
        if self.records.contains_key(&id) || self.alias_targets.contains_key(&id) {
            // Duplicate delivery after a crash between persist and queue
            // removal: already accepted (or already aliased).
            return Ok(());
        }
        if let Some(key) = &rec.idempotency_key {
            if let Some(&original) = self.idemp.get(key) {
                // Dedup: persist a redirect at this id's record path so
                // the submitter's handle resolves to the original
                // transaction's outcome.
                self.metrics.record_idempotent_hit();
                self.persist_alias(id, original)?;
                return Ok(());
            }
        }
        let now = self.clock.now_ms();
        if let Some(deadline) = rec.deadline_ms {
            if now > deadline {
                // Expired before admission: abort without ever scheduling.
                // The key is deliberately *not* registered — a retry with a
                // fresh deadline must run, not dedup onto this rejection.
                rec.idempotency_key = None;
                rec.state = TxnState::Accepted;
                self.records.insert(id, rec);
                self.metrics.record_deadline_reject();
                self.finalize_coded(
                    id,
                    TxnState::Aborted,
                    Some(format!(
                        "deadline ({deadline} ms) expired before admission (now {now} ms)"
                    )),
                    Some(AbortCode::DeadlineExpired),
                )?;
                return Ok(());
            }
        }
        if let Some(key) = &rec.idempotency_key {
            self.idemp.insert(key.clone(), id);
        }
        rec.state = TxnState::Accepted;
        let priority = rec.priority;
        self.persist_record(&rec)?;
        self.records.insert(id, rec);
        self.metrics.record_admission(priority);
        self.todo[priority.index()].push_back(id);
        Ok(())
    }

    /// Persists an idempotency redirect (`alias` → `original`) at the
    /// alias id's record path and indexes it for GC.
    fn persist_alias(&mut self, alias: TxnId, original: TxnId) -> Result<(), PlatformError> {
        let data =
            serde_json::to_vec(&TxnAlias { alias_of: original }).expect("serializable alias");
        self.write_znode(layout::txn(alias), data, false)?;
        self.alias_targets.insert(alias, original);
        self.aliases_of.entry(original).or_default().push(alias);
        Ok(())
    }

    /// Step 5 of Figure 2: clean up after physical execution.
    fn handle_result(&mut self, id: TxnId, outcome: PhysicalOutcome) -> Result<(), PlatformError> {
        let Some(rec) = self.records.get(&id) else {
            return Ok(());
        };
        if rec.state != TxnState::Started {
            // Already finalized (e.g. by KILL); drop the stale result.
            return Ok(());
        }
        let log = rec.log.clone();
        match outcome {
            PhysicalOutcome::Committed => {
                self.finalize(id, TxnState::Committed, None)?;
            }
            PhysicalOutcome::Aborted { failed_seq, error } => {
                self.rollback_in_logical(&log);
                self.finalize(
                    id,
                    TxnState::Aborted,
                    Some(format!("physical action #{failed_seq} failed: {error}")),
                )?;
            }
            PhysicalOutcome::Failed {
                failed_seq,
                error,
                undo_failed_seq,
                undo_error,
                inconsistent_object,
            } => {
                self.rollback_in_logical(&log);
                self.mark_inconsistent(&inconsistent_object)?;
                self.finalize(
                    id,
                    TxnState::Failed,
                    Some(format!(
                        "action #{failed_seq} failed ({error}); undo #{undo_failed_seq} also failed ({undo_error})"
                    )),
                )?;
            }
            PhysicalOutcome::Killed { .. } => {
                // The controller killed this transaction already; if we get
                // here the record is somehow still Started, so abort it the
                // KILL way for safety.
                self.kill_logically(id, "worker abandoned after KILL")?;
            }
        }
        Ok(())
    }

    fn handle_signal(&mut self, id: TxnId, signal: Signal) -> Result<(), PlatformError> {
        let Some(rec) = self.records.get(&id) else {
            return Ok(());
        };
        if rec.state != TxnState::Started {
            return Ok(());
        }
        match signal {
            Signal::Term => {
                self.client.put_json(&layout::signal(id), &Signal::Term)?;
                self.term_signaled.insert(id);
            }
            Signal::Kill => {
                self.client.put_json(&layout::signal(id), &Signal::Kill)?;
                self.kill_logically(id, "killed by operator")?;
            }
        }
        Ok(())
    }

    /// The KILL semantics of §4: abort immediately in the logical layer
    /// only; physical state may now diverge, so every object the execution
    /// log touches is marked inconsistent pending `repair`.
    fn kill_logically(&mut self, id: TxnId, reason: &str) -> Result<(), PlatformError> {
        let Some(rec) = self.records.get(&id) else {
            return Ok(());
        };
        let log = rec.log.clone();
        self.rollback_in_logical(&log);
        let mut objects: Vec<Path> = log.iter().map(|r| r.object.clone()).collect();
        objects.dedup();
        for object in objects {
            self.mark_inconsistent(&object)?;
        }
        self.finalize_coded(
            id,
            TxnState::Aborted,
            Some(reason.to_owned()),
            Some(AbortCode::Killed),
        )
    }

    fn rollback_in_logical(&mut self, log: &[LogRecord]) {
        let t0 = Instant::now();
        if let Err(e) = rollback_logical(log, &mut self.tree, &self.actions) {
            // A logical undo that cannot apply means the cached tree is
            // unreliable; quarantine the affected subtree.
            if let Some(first) = log.first() {
                let _ = self.mark_inconsistent(&first.object.clone());
            }
            self.metrics.record_event(
                self.clock.now_ms(),
                &self.cfg.name,
                &format!("logical-rollback-error: {e}"),
            );
        }
        self.metrics.add_busy(t0.elapsed());
    }

    /// Step 3 of Figure 2: schedule each `todoQ` lane, highest priority
    /// first, until the lane empties or its head defers on a lock
    /// conflict. Head-of-line blocking is per lane, so a deferred batch
    /// transaction never holds up the high lane. Returns the number of
    /// transactions moved to the physical layer or finalized.
    fn schedule(&mut self) -> Result<usize, PlatformError> {
        let mut moved = 0;
        for lane in 0..self.todo.len() {
            moved += self.schedule_lane(lane)?;
        }
        Ok(moved)
    }

    fn schedule_lane(&mut self, lane: usize) -> Result<usize, PlatformError> {
        let mut moved = 0;
        while let Some(&id) = self.todo[lane].front() {
            let Some(mut rec) = self.records.get(&id).cloned() else {
                self.todo[lane].pop_front();
                continue;
            };
            // The admission deadline also gates scheduling: a submission
            // that aged out while queued behind the lane is aborted, not
            // started.
            let now = self.clock.now_ms();
            if rec.deadline_ms.map(|d| now > d).unwrap_or(false) {
                self.todo[lane].pop_front();
                let deadline = rec.deadline_ms.expect("checked");
                // Unregister the idempotency key (and strip it from the
                // persisted record, so recovery does not re-register it):
                // as at the admission gate, a retry with a fresh deadline
                // must run, not dedup onto this rejection.
                if let Some(key) = rec.idempotency_key.take() {
                    if self.idemp.get(&key) == Some(&id) {
                        self.idemp.remove(&key);
                    }
                }
                self.records.insert(id, rec);
                self.metrics.record_deadline_reject();
                self.finalize_coded(
                    id,
                    TxnState::Aborted,
                    Some(format!(
                        "deadline ({deadline} ms) expired in todoQ (now {now} ms)"
                    )),
                    Some(AbortCode::DeadlineExpired),
                )?;
                moved += 1;
                continue;
            }
            // Service procedures first; the controller-internal twin repair
            // procedure is resolvable only by the controller itself.
            let twin_fallback = || {
                (rec.proc_name == TWIN_REPAIR_PROC)
                    .then(|| self.twin_proc.clone())
                    .flatten()
            };
            let Some(proc_) = self
                .service
                .procs
                .get(&rec.proc_name)
                .or_else(twin_fallback)
            else {
                self.todo[lane].pop_front();
                let proc_name = rec.proc_name.clone();
                self.records.insert(id, rec);
                self.finalize_coded(
                    id,
                    TxnState::Aborted,
                    Some(format!("unknown procedure `{proc_name}`")),
                    Some(AbortCode::UnknownProcedure),
                )?;
                moved += 1;
                continue;
            };
            let t0 = Instant::now();
            let outcome = simulate(
                &mut rec,
                proc_.as_ref(),
                &mut self.tree,
                &self.actions,
                &self.service.constraints,
                &mut self.locks,
            );
            self.metrics.add_busy(t0.elapsed());
            match outcome {
                LogicalOutcome::Runnable => {
                    self.todo[lane].pop_front();
                    rec.state = TxnState::Started;
                    rec.lsn = Some(self.next_lsn);
                    self.next_lsn += 1;
                    rec.locks = self.locks.locks_of(id);
                    self.persist_record(&rec)?;
                    self.records.insert(id, rec);
                    self.running.insert(id);
                    self.started_at.insert(id, self.clock.now_ms());
                    let task = serde_json::to_vec(&PhyTask { id }).expect("serializable");
                    let q = DistributedQueue::bind(self.client, layout::phy_q());
                    if self.batch.enabled() {
                        // The task becomes visible to workers atomically
                        // with the Started record at the round flush.
                        self.batch.push(q.enqueue_op(task));
                    } else {
                        q.enqueue(task)?;
                    }
                    moved += 1;
                }
                LogicalOutcome::Deferred { .. } => {
                    // Head-of-line blocking within the lane, per the
                    // paper's FIFO todoQ: the deferred transaction stays at
                    // the lane front for retry.
                    rec.defer_count += 1;
                    self.records.insert(id, rec);
                    self.metrics.record_defer();
                    break;
                }
                LogicalOutcome::Aborted { reason } => {
                    self.todo[lane].pop_front();
                    self.records.insert(id, rec);
                    self.metrics.record_violation();
                    self.finalize(id, TxnState::Aborted, Some(reason))?;
                    moved += 1;
                }
            }
        }
        Ok(moved)
    }

    /// Finalizes a transaction: persist the terminal state, release locks,
    /// record metrics, and queue the record for GC.
    fn finalize(
        &mut self,
        id: TxnId,
        state: TxnState,
        error: Option<String>,
    ) -> Result<(), PlatformError> {
        self.finalize_coded(id, state, error, None)
    }

    /// [`Controller::finalize`] carrying a machine-readable abort code for
    /// platform-originated rejections.
    fn finalize_coded(
        &mut self,
        id: TxnId,
        state: TxnState,
        error: Option<String>,
        abort_code: Option<AbortCode>,
    ) -> Result<(), PlatformError> {
        let now = self.clock.now_ms();
        let Some(rec) = self.records.get_mut(&id) else {
            return Ok(());
        };
        rec.state = state;
        rec.error = error;
        rec.abort_code = abort_code;
        rec.finished_ms = Some(now);
        let rec_clone = rec.clone();
        self.persist_record(&rec_clone)?;
        self.locks.release_all(id);
        self.running.remove(&id);
        self.started_at.remove(&id);
        self.term_signaled.remove(&id);
        self.metrics.record_txn(TxnSample {
            id,
            submitted_ms: rec_clone.submitted_ms,
            finished_ms: now,
            state,
            defer_count: rec_clone.defer_count,
        });
        self.finalized_since_ckpt += 1;
        self.gc_queue.push_back((id, now));
        Ok(())
    }

    /// TERM, then KILL, transactions stuck in physical execution (paper §4).
    fn check_timeouts(&mut self) -> Result<(), PlatformError> {
        let now = self.clock.now_ms();
        let stalled: Vec<(TxnId, u64)> = self
            .running
            .iter()
            .filter_map(|id| {
                self.started_at
                    .get(id)
                    .map(|s| (*id, now.saturating_sub(*s)))
            })
            .collect();
        for (id, elapsed) in stalled {
            if let Some(kill_ms) = self.cfg.kill_timeout_ms {
                if elapsed > kill_ms {
                    self.client.put_json(&layout::signal(id), &Signal::Kill)?;
                    self.kill_logically(id, "killed after stall timeout")?;
                    continue;
                }
            }
            if let Some(term_ms) = self.cfg.term_timeout_ms {
                if elapsed > term_ms && !self.term_signaled.contains(&id) {
                    self.client.put_json(&layout::signal(id), &Signal::Term)?;
                    self.term_signaled.insert(id);
                }
            }
        }
        Ok(())
    }

    /// Quiescent checkpointing plus garbage collection of old records.
    fn maybe_checkpoint(&mut self) -> Result<(), PlatformError> {
        if self.cfg.checkpoint_every == 0
            || self.finalized_since_ckpt < self.cfg.checkpoint_every
            || !self.running.is_empty()
        {
            return Ok(());
        }
        let watermark = self.next_lsn - 1;
        let ckpt = Checkpoint {
            snapshot: self
                .tree
                .to_snapshot()
                .map_err(|e| PlatformError::Admin(e.to_string()))?,
            watermark_lsn: watermark,
        };
        self.client.put_json(&layout::checkpoint(), &ckpt)?;
        self.finalized_since_ckpt = 0;
        self.metrics.record_checkpoint();

        // GC finalized records fully covered by the checkpoint and older
        // than the grace period (clients may still be reading outcomes).
        let now = self.clock.now_ms();
        while let Some(&(id, finalized_at)) = self.gc_queue.front() {
            if now.saturating_sub(finalized_at) < self.cfg.gc_grace_ms {
                break;
            }
            self.gc_queue.pop_front();
            let covered = self
                .records
                .get(&id)
                .map(|r| r.state.is_final() && r.lsn.map(|l| l <= watermark).unwrap_or(true))
                .unwrap_or(false);
            if covered {
                let _ = self.client.delete(&layout::txn(id), None);
                let _ = self.client.delete(&layout::signal(id), None);
                if let Some(rec) = self.records.remove(&id) {
                    // The dedup window closes with the record: drop its
                    // idempotency key and any aliases pointing at it.
                    if let Some(key) = &rec.idempotency_key {
                        if self.idemp.get(key) == Some(&id) {
                            self.idemp.remove(key);
                        }
                    }
                }
                for alias in self.aliases_of.remove(&id).unwrap_or_default() {
                    let _ = self.client.delete(&layout::txn(alias), None);
                    self.alias_targets.remove(&alias);
                }
                self.persisted.remove(&id);
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Digital-twin reconciliation: desired (logical) vs reported state.
    // ------------------------------------------------------------------

    /// One reconciliation pass of the digital twin: refresh the reported
    /// state cache when the twin epoch moved, diff every reported resource
    /// against the desired (logical) tree, and let the per-resource waker
    /// decide whether to submit a corrective transaction, back off, or
    /// escalate. Corrective transactions travel through the regular input
    /// lanes and the `todoQ` like any client submission. Returns the number
    /// of corrective transactions submitted this pass.
    fn twin_tick(&mut self) -> Result<usize, PlatformError> {
        if !self.cfg.twin.enabled || self.twin_proc.is_none() {
            return Ok(0);
        }
        let now = self.clock.now_ms();
        if now.saturating_sub(self.twin_last_tick_ms) < self.cfg.twin.interval_ms
            && self.twin_last_tick_ms != 0
        {
            return Ok(0);
        }
        self.twin_last_tick_ms = now;
        if !self.refresh_reported()? {
            return Ok(0);
        }
        let mut mounts: Vec<Path> = self.twin_reported.keys().cloned().collect();
        mounts.sort();
        let mut submitted = 0;
        for mount in mounts {
            // Never stack a second repair behind one still holding the
            // scope's locks (it would head-of-line block its lane);
            // re-detection waits for the in-flight outcome instead.
            if let Some(&tid) = self.twin_inflight.get(&mount) {
                let done = self
                    .records
                    .get(&tid)
                    .map(|r| r.state.is_final())
                    .unwrap_or(true);
                if !done {
                    continue;
                }
                self.twin_inflight.remove(&mount);
            }
            if self.tree.get(&mount).is_none() {
                // The resource left the desired state (decommissioned);
                // whatever it still reports is not drift to chase.
                self.twin.forget(&mount);
                continue;
            }
            let (down, diffs) = {
                let report = self.twin_reported.get(&mount).expect("keyed by mount");
                let reported = report_tree(&mount, &report.state);
                (report.down, self.tree.diff(&reported, &mount))
            };
            if diffs.is_empty() {
                let first_seen = self.twin.phase_of(&mount).is_none();
                match self.twin.observe_in_sync(&mount, now) {
                    Some(mttr) => {
                        self.metrics.record_drift_repaired(mttr);
                        // The drift episode may stem from a KILL that
                        // marked the subtree inconsistent; convergence
                        // clears the quarantine.
                        self.clear_inconsistent_under(&mount);
                        self.publish_twin(
                            now,
                            &mount,
                            TwinPhase::Converged,
                            0,
                            format!("converged after {mttr} ms"),
                        );
                    }
                    None if first_seen => self.publish_twin(
                        now,
                        &mount,
                        TwinPhase::InSync,
                        0,
                        "reported state matches desired state".into(),
                    ),
                    None => {}
                }
                continue;
            }
            let fp = drift_fingerprint(&diffs);
            let obs = self.twin.observe_drift(&mount, fp, now, !down);
            if obs.newly_detected {
                self.metrics.record_drift_detected();
                let detail = if down {
                    format!("device down; {} diff(s)", diffs.len())
                } else {
                    format!("{} diff(s)", diffs.len())
                };
                self.publish_twin(now, &mount, TwinPhase::Drifted, 0, detail);
            }
            if obs.escalated {
                self.metrics.record_drift_escalated();
                self.publish_twin(
                    now,
                    &mount,
                    TwinPhase::Degraded,
                    self.cfg.twin.max_attempts,
                    format!(
                        "drift persists after {} repair attempt(s)",
                        self.cfg.twin.max_attempts
                    ),
                );
            }
            if let Some(attempt) = obs.submit_attempt {
                let id = TWIN_TXN_BASE + self.twin_next_seq;
                self.twin_next_seq += 1;
                let mount_str = mount.to_string();
                let priority = if self
                    .cfg
                    .twin
                    .critical_paths
                    .iter()
                    .any(|p| mount_str.starts_with(p.as_str()))
                {
                    Priority::High
                } else {
                    Priority::Batch
                };
                // Keyed by (mount, drift fingerprint, attempt): crash
                // redelivery dedups, while a genuine retry after backoff
                // mints a fresh attempt number and runs.
                let key = format!("twin:{mount}:{fp:x}:{attempt}");
                let msg = InputMsg::Submit {
                    id,
                    proc_name: TWIN_REPAIR_PROC.to_owned(),
                    args: vec![Value::from(mount_str)],
                    submitted_ms: now,
                    priority,
                    deadline_ms: None,
                    idempotency_key: Some(key),
                    labels: vec![("origin".to_owned(), "twin".to_owned())],
                };
                let q = DistributedQueue::bind(self.client, layout::input_lane(priority));
                let data = encode_input(msg);
                if self.batch.enabled() {
                    self.batch.push(q.enqueue_op(data));
                } else {
                    q.enqueue(data)?;
                }
                self.twin_inflight.insert(mount.clone(), id);
                if self.twin.phase_of(&mount) == Some(TwinPhase::Reconciling) {
                    self.publish_twin(
                        now,
                        &mount,
                        TwinPhase::Reconciling,
                        attempt + 1,
                        format!("corrective transaction {id} submitted ({priority:?} lane)"),
                    );
                }
                submitted += 1;
            }
        }
        Ok(submitted)
    }

    /// Refreshes the reported-state cache from the store's `twin/` subtree
    /// when the epoch counter moved. Returns whether any reported state is
    /// available at all (no reports — reporter not running — disables the
    /// pass entirely).
    fn refresh_reported(&mut self) -> Result<bool, PlatformError> {
        let Some(epoch) = self.client.get_json::<u64>(&layout::twin_epoch())? else {
            return Ok(false);
        };
        if self.twin_epoch_seen == Some(epoch) {
            return Ok(!self.twin_reported.is_empty());
        }
        let names = match self.client.get_children(&layout::twin_reported()) {
            Ok(names) => names,
            Err(CoordError::NoNode(_)) => Vec::new(),
            Err(e) => return Err(e.into()),
        };
        let mut reported = HashMap::new();
        for name in names {
            let znode = layout::twin_reported().join(&name);
            if let Some(rep) = self.client.get_json::<StateReport>(&znode)? {
                reported.insert(rep.mount.clone(), rep);
            }
        }
        self.twin_reported = reported;
        self.twin_epoch_seen = Some(epoch);
        Ok(!self.twin_reported.is_empty())
    }

    fn publish_twin(
        &self,
        at_ms: u64,
        path: &Path,
        phase: TwinPhase,
        attempt: u32,
        detail: String,
    ) {
        self.cfg.twin_feed.publish(&TwinEvent {
            at_ms,
            path: path.clone(),
            phase,
            attempt,
            detail,
        });
    }

    // ------------------------------------------------------------------
    // Reconciliation (paper §4).
    // ------------------------------------------------------------------

    /// `repair`: push the logical layer's view onto drifted devices.
    fn handle_repair(&mut self, scope: Path, admin_id: u64) -> Result<(), PlatformError> {
        let result = self.do_repair(&scope);
        self.client.put_json(&layout::admin(admin_id), &result)?;
        Ok(())
    }

    fn do_repair(&mut self, scope: &Path) -> AdminResult {
        let Some(registry) = self.mode.registry().cloned() else {
            return AdminResult {
                ok: false,
                message: "repair requires physical mode".into(),
                actions: 0,
                drifted: 0,
            };
        };
        // The one-shot operator repair is the same diff → plan → invoke
        // fixpoint the twin reconciler converges with ([`repair_fixpoint`]),
        // so the two paths cannot diverge in behavior.
        let out = repair_fixpoint(
            &self.tree,
            registry.as_ref(),
            scope,
            &self.service.repair_rules,
            3,
        );
        if out.ok {
            self.clear_inconsistent_under(scope);
        }
        self.metrics.record_repair();
        AdminResult {
            ok: out.ok,
            message: if out.ok && out.executed == 0 {
                "layers already consistent".into()
            } else if out.ok {
                format!("repaired with {} action(s)", out.executed)
            } else {
                format!(
                    "{} diff(s) remain, {} unmatched, errors: [{}]",
                    out.remaining,
                    out.unmatched,
                    out.errors.join("; ")
                )
            },
            actions: out.executed,
            drifted: out.drifted,
        }
    }

    /// `reload`: replace the logical subtree with freshly-retrieved physical
    /// state, under a write lock and full constraint validation.
    fn handle_reload(&mut self, scope: Path, admin_id: u64) -> Result<(), PlatformError> {
        let result = self.do_reload(&scope);
        self.client.put_json(&layout::admin(admin_id), &result)?;
        Ok(())
    }

    fn do_reload(&mut self, scope: &Path) -> AdminResult {
        let Some(registry) = self.mode.registry().cloned() else {
            return AdminResult {
                ok: false,
                message: "reload requires physical mode".into(),
                actions: 0,
                drifted: 0,
            };
        };
        // Reload behaves like a transaction: it takes a W lock on the scope
        // so it cannot race outstanding transactions (paper §4).
        let reload_txn: TxnId = ADMIN_TXN_BASE + self.next_lsn;
        let requests = crate::locks::with_intentions(scope, crate::locks::LockMode::W);
        if let Err(c) = self.locks.try_acquire(reload_txn, &requests) {
            return AdminResult {
                ok: false,
                message: format!(
                    "reload conflicts with outstanding transaction at {}",
                    c.path
                ),
                actions: 0,
                drifted: 0,
            };
        }
        let physical = registry.physical_tree();
        // The drifted count a reload reports: distinct logical paths that
        // diverged from physical state before the subtree swap.
        let drifted = {
            let diffs = self.tree.diff(&physical, scope);
            let mut paths: Vec<&Path> = diffs.iter().map(|d| d.path()).collect();
            paths.sort_unstable();
            paths.dedup();
            paths.len()
        };
        let Some(new_subtree) = physical.get(scope).cloned() else {
            self.locks.release_all(reload_txn);
            return AdminResult {
                ok: false,
                message: format!("no physical state at {scope}"),
                actions: 0,
                drifted: 0,
            };
        };
        // Validate on a candidate tree before committing the swap.
        let mut candidate = self.tree.clone();
        if candidate.replace(scope, new_subtree.clone()).is_err() {
            self.locks.release_all(reload_txn);
            return AdminResult {
                ok: false,
                message: format!("logical tree has no node at {scope}"),
                actions: 0,
                drifted: 0,
            };
        }
        if let Err(v) = self.service.constraints.check_all(&candidate) {
            self.locks.release_all(reload_txn);
            return AdminResult {
                ok: false,
                message: format!("reload aborted: {v}"),
                actions: 0,
                drifted: 0,
            };
        }
        let nodes = new_subtree.subtree_size();
        self.tree = candidate;
        self.clear_inconsistent_under(scope);

        // Persist the reload as a committed internal transaction so recovery
        // replays it in lsn order.
        let snapshot = serde_json::to_string(&new_subtree).expect("serializable node");
        let mut rec = TxnRecord::new(reload_txn, "__reload", vec![], self.clock.now_ms());
        rec.state = TxnState::Committed;
        rec.lsn = Some(self.next_lsn);
        self.next_lsn += 1;
        rec.finished_ms = Some(self.clock.now_ms());
        rec.log = vec![LogRecord {
            seq: 1,
            object: scope.clone(),
            action: "__replaceSubtree".into(),
            args: vec![Value::from(snapshot)],
            undo_action: None,
            undo_object: None,
            undo_args: vec![],
            best_effort: false,
        }];
        let persist = self.persist_record(&rec);
        self.records.insert(rec.id, rec);
        self.gc_queue.push_back((reload_txn, self.clock.now_ms()));
        self.finalized_since_ckpt += 1;
        self.locks.release_all(reload_txn);
        self.metrics.record_reload();
        match persist {
            Ok(()) => AdminResult {
                ok: true,
                message: format!("reloaded {nodes} node(s)"),
                actions: nodes,
                drifted,
            },
            Err(e) => AdminResult {
                ok: false,
                message: format!("reload persisted partially: {e}"),
                actions: nodes,
                drifted,
            },
        }
    }

    // ------------------------------------------------------------------
    // Helpers.
    // ------------------------------------------------------------------

    /// Writes `data` to `path` — buffered into the round batch under group
    /// commit, immediately otherwise. `exists` picks create vs. set; the
    /// immediate path self-corrects a stale hint, the batched path lets the
    /// flush fail and leadership recovery resolve it.
    fn write_znode(
        &mut self,
        path: Path,
        data: Vec<u8>,
        exists: bool,
    ) -> Result<(), PlatformError> {
        if self.batch.enabled() {
            self.batch.put(path, data, exists);
            return Ok(());
        }
        if exists {
            match self.client.set_data(&path, data.clone(), None) {
                Ok(_) => Ok(()),
                Err(CoordError::NoNode(_)) => {
                    self.client.create(&path, data, CreateMode::Persistent)?;
                    Ok(())
                }
                Err(e) => Err(e.into()),
            }
        } else {
            match self
                .client
                .create(&path, data.clone(), CreateMode::Persistent)
            {
                Ok(_) => Ok(()),
                Err(CoordError::NodeExists(_)) => {
                    self.client.set_data(&path, data, None)?;
                    Ok(())
                }
                Err(e) => Err(e.into()),
            }
        }
    }

    fn persist_record(&mut self, rec: &TxnRecord) -> Result<(), PlatformError> {
        let data = serde_json::to_vec(rec).expect("serializable record");
        let exists = self.persisted.contains(&rec.id);
        self.write_znode(layout::txn(rec.id), data, exists)?;
        self.persisted.insert(rec.id);
        Ok(())
    }

    fn mark_inconsistent(&mut self, path: &Path) -> Result<(), PlatformError> {
        if self.tree.mark_inconsistent(path, true).is_ok() {
            self.inconsistent.insert(path.clone());
            self.persist_inconsistent()?;
        }
        Ok(())
    }

    fn clear_inconsistent_under(&mut self, scope: &Path) {
        let cleared: Vec<Path> = self
            .inconsistent
            .iter()
            .filter(|p| scope.contains(p))
            .cloned()
            .collect();
        for p in &cleared {
            let _ = self.tree.mark_inconsistent(p, false);
            self.inconsistent.remove(p);
        }
        if !cleared.is_empty() {
            let _ = self.persist_inconsistent();
        }
    }

    fn persist_inconsistent(&mut self) -> Result<(), PlatformError> {
        let paths: Vec<&Path> = self.inconsistent.iter().collect();
        let data = serde_json::to_vec(&paths).expect("serializable paths");
        let exists = self.inconsistent_persisted;
        self.write_znode(layout::inconsistent(), data, exists)?;
        self.inconsistent_persisted = true;
        Ok(())
    }
}

/// Builds a tree containing only `state` mounted at `mount`, with
/// placeholder ancestors so the mount slot exists. Diffs against it are
/// always scoped to `mount`, so the placeholders are never compared — this
/// avoids cloning the whole frame per resource per tick.
fn report_tree(mount: &Path, state: &tropic_model::Node) -> Tree {
    let mut tree = Tree::new();
    let mut ancestors = Vec::new();
    let mut cursor = mount.parent();
    while let Some(p) = cursor {
        if p.is_root() {
            break;
        }
        cursor = p.parent();
        ancestors.push(p);
    }
    for anc in ancestors.into_iter().rev() {
        let _ = tree.insert(&anc, tropic_model::Node::new("frame"));
    }
    let _ = tree.insert(mount, state.clone());
    tree
}

/// Registers actions the controller itself relies on: the reload subtree
/// swap replayed during recovery, and the twin's universal no-op undo
/// (corrective repair actions were never simulated logically, so both their
/// logical and physical undo must do nothing).
fn register_builtin_actions(actions: &mut ActionRegistry) {
    actions.register(ActionDef::new(
        tropic_devices::NOOP_ACTION,
        |_, _, _| Ok(()),
        |_, _, _| None,
    ));
    actions.register(ActionDef::new(
        "__replaceSubtree",
        |tree, object, args| {
            let json = args
                .first()
                .and_then(Value::as_str)
                .ok_or("missing subtree snapshot argument")?;
            let node: tropic_model::Node = serde_json::from_str(json).map_err(|e| e.to_string())?;
            tree.replace(object, node).map_err(|e| e.to_string())?;
            Ok(())
        },
        |_, _, _| None,
    ));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_replace_subtree_applies() {
        let mut actions = ActionRegistry::new();
        register_builtin_actions(&mut actions);
        let def = actions.get("__replaceSubtree").unwrap();
        let mut tree = Tree::new();
        tree.insert(&Path::parse("/a").unwrap(), tropic_model::Node::new("old"))
            .unwrap();
        let new_node = tropic_model::Node::new("new").with_attr("x", 1i64);
        let json = serde_json::to_string(&new_node).unwrap();
        def.apply_logical(&mut tree, &Path::parse("/a").unwrap(), &[Value::from(json)])
            .unwrap();
        assert_eq!(
            tree.get(&Path::parse("/a").unwrap()).unwrap().entity(),
            "new"
        );
        // Irreversible by design.
        assert!(def
            .derive_undo(&tree, &Path::parse("/a").unwrap(), &[])
            .is_none());
    }

    #[test]
    fn checkpoint_roundtrip() {
        let ckpt = Checkpoint {
            snapshot: Tree::new().to_snapshot().unwrap(),
            watermark_lsn: 17,
        };
        let json = serde_json::to_string(&ckpt).unwrap();
        let back: Checkpoint = serde_json::from_str(&json).unwrap();
        assert_eq!(back.watermark_lsn, 17);
        assert!(Tree::from_snapshot(&back.snapshot).is_ok());
    }
}

//! The digital twin: continuous desired-state reconciliation.
//!
//! TROPIC's paper (§4) reconciles the logical and physical layers only when
//! an operator triggers `repair` or `reload`. This module makes the logical
//! tree a *live twin* of the fleet, following the reconciler/waker/notifier
//! decomposition of device-twin platforms:
//!
//! * **Reported state** — devices asynchronously publish
//!   [`StateReport`](tropic_devices::StateReport)s (see
//!   [`tropic_devices::report`]); the platform's report pump persists them
//!   under the coordination store's `twin/` subtree
//!   ([`crate::msg::layout::twin_reported`]) so they survive controller
//!   failover.
//! * **Reconciler** — each pass, the leading controller diffs the desired
//!   (logical) tree against every mount's reported state with `Tree::diff`
//!   and, when they disagree, submits a corrective `__twinRepair`
//!   transaction through the normal priority lanes (batch by default, high
//!   for configured-critical paths) with an idempotency key so re-detection
//!   of the same drift never double-fires.
//! * **Waker** — the [`TwinTracker`] paces repair attempts per resource
//!   with exponential backoff plus deterministic jitter, and escalates to
//!   [`TwinPhase::Degraded`] after the configured attempts (a degraded
//!   resource still retries at the backoff cap, so a healed device always
//!   converges).
//! * **Event feed** — every phase transition is published as a
//!   [`TwinEvent`] through the in-process [`TwinFeed`], which the RPC
//!   frontend streams to remote subscribers (`RemoteSubscription`'s twin
//!   filter).
//!
//! The synchronous [`repair_fixpoint`] at the bottom is the shared core of
//! the operator-facing one-shot `repair` and the twin's corrective planning:
//! both diff with the same machinery and plan with the same
//! [`RepairRules`], so the paths cannot diverge.

use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use tropic_devices::DeviceRegistry;
use tropic_model::{DiffEntry, Path, Tree};

use crate::config::TwinConfig;
use crate::reconcile::RepairRules;

/// Name of the controller-internal stored procedure that plans one twin
/// repair (see [`crate::proc::TxnContext::reconcile`]). Scheduled like any
/// client transaction but owned by the reconciler.
pub const TWIN_REPAIR_PROC: &str = "__twinRepair";

/// Transaction-id namespace for twin-scheduled repairs: above
/// [`ADMIN_TXN_BASE`](crate::controller) so twin ids are invisible to client
/// id scans and the regular event subscription, and disjoint from reload
/// ids.
pub(crate) const TWIN_TXN_BASE: crate::txn::TxnId = (1 << 62) | (1 << 61);

/// A resource's position in the reconciliation lifecycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TwinPhase {
    /// Reported state matches desired state.
    InSync,
    /// Divergence detected; no corrective transaction in flight (e.g. the
    /// device is down, or the waker is backing off).
    Drifted,
    /// A corrective transaction has been submitted and the twin awaits its
    /// effect.
    Reconciling,
    /// Reported state matched desired state again after a drift episode.
    /// Transient: the resource is `InSync` afterwards.
    Converged,
    /// The configured repair attempts were exhausted without convergence;
    /// retries continue at the backoff cap, but the resource needs operator
    /// attention.
    Degraded,
}

/// One twin phase transition, streamed to subscribers.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TwinEvent {
    /// Platform-clock timestamp (ms).
    pub at_ms: u64,
    /// The resource (device mount) transitioning.
    pub path: Path,
    /// The phase entered.
    pub phase: TwinPhase,
    /// Repair attempts made against the current drift episode so far.
    pub attempt: u32,
    /// Human-readable context (drift summary, escalation reason, MTTR).
    pub detail: String,
}

/// In-process fan-out hub for [`TwinEvent`]s.
///
/// Created once per platform and shared by every controller, so the feed
/// survives leader failover; the RPC frontend bridges it onto the network.
#[derive(Clone, Default)]
pub struct TwinFeed {
    subscribers: Arc<Mutex<Vec<Sender<TwinEvent>>>>,
}

impl std::fmt::Debug for TwinFeed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TwinFeed")
            .field("subscribers", &self.subscriber_count())
            .finish()
    }
}

impl TwinFeed {
    /// Creates an empty feed.
    pub fn new() -> Self {
        Self::default()
    }

    /// Publishes one event to every live subscriber; dead subscribers are
    /// pruned.
    pub fn publish(&self, event: &TwinEvent) {
        self.subscribers
            .lock()
            .retain(|tx| tx.send(event.clone()).is_ok());
    }

    /// Opens a subscription receiving every event published from now on.
    pub fn subscribe(&self) -> TwinSubscription {
        let (tx, rx) = channel();
        self.subscribers.lock().push(tx);
        TwinSubscription { rx }
    }

    /// Number of live subscribers (diagnostics).
    pub fn subscriber_count(&self) -> usize {
        self.subscribers.lock().len()
    }
}

/// The receiving end of a [`TwinFeed`] subscription. Dropping it
/// unsubscribes (the feed prunes the dead sender on its next publish).
pub struct TwinSubscription {
    rx: Receiver<TwinEvent>,
}

impl TwinSubscription {
    /// Waits up to `timeout` for the next event.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<TwinEvent> {
        match self.rx.recv_timeout(timeout) {
            Ok(ev) => Some(ev),
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => None,
        }
    }

    /// Drains every event currently queued without blocking.
    pub fn drain(&self) -> Vec<TwinEvent> {
        self.rx.try_iter().collect()
    }
}

/// Stable fingerprint of a drift's shape: the same set of diffs yields the
/// same fingerprint, so re-detection of an unchanged drift is recognized
/// (idempotent), while a drift that mutated resets the waker's attempts.
pub fn drift_fingerprint(diffs: &[DiffEntry]) -> u64 {
    let mut lines: Vec<String> = diffs.iter().map(|d| format!("{d:?}")).collect();
    lines.sort_unstable();
    let mut hasher = DefaultHasher::new();
    lines.hash(&mut hasher);
    hasher.finish()
}

/// The waker's backoff schedule: `base · 2^(attempt-1)` capped at `cap`,
/// plus a deterministic jitter of up to a quarter of the delay derived from
/// `(mount, attempt)` — flapping devices across a fleet de-synchronize
/// without a shared RNG, and a given resource's schedule is reproducible.
pub fn backoff_delay_ms(base_ms: u64, cap_ms: u64, attempt: u32, mount: &Path) -> u64 {
    let attempt = attempt.max(1);
    let exp = attempt.saturating_sub(1).min(32);
    let delay = base_ms.saturating_mul(1u64 << exp).min(cap_ms.max(1));
    let mut hasher = DefaultHasher::new();
    mount.to_string().hash(&mut hasher);
    attempt.hash(&mut hasher);
    let jitter_span = delay / 4 + 1;
    delay + hasher.finish() % jitter_span
}

/// What [`TwinTracker::observe_drift`] decided for one resource.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DriftObservation {
    /// This call opened a new drift episode (`InSync` → `Drifted`).
    pub newly_detected: bool,
    /// This call escalated the resource to `Degraded`.
    pub escalated: bool,
    /// Submit a corrective transaction now, stamped with this attempt
    /// number (`None`: the waker is backing off, or repair is not possible).
    pub submit_attempt: Option<u32>,
}

struct ResourceState {
    phase: TwinPhase,
    fingerprint: u64,
    attempts: u32,
    detected_at_ms: u64,
    next_attempt_ms: u64,
}

/// Per-resource reconciliation state machine: drift episodes, the backoff
/// waker, and escalation. Pure in-memory bookkeeping — the controller owns
/// one and rebuilds it from scratch on failover (reported state persists in
/// the coordination store; idempotency keys absorb re-submissions).
pub struct TwinTracker {
    base_ms: u64,
    cap_ms: u64,
    max_attempts: u32,
    resources: BTreeMap<Path, ResourceState>,
}

impl TwinTracker {
    /// Creates a tracker with the config's backoff and escalation knobs.
    pub fn new(cfg: &TwinConfig) -> Self {
        TwinTracker {
            base_ms: cfg.backoff_base_ms.max(1),
            cap_ms: cfg.backoff_cap_ms.max(cfg.backoff_base_ms).max(1),
            max_attempts: cfg.max_attempts.max(1),
            resources: BTreeMap::new(),
        }
    }

    /// Records that `mount`'s reported state matches desired state. Returns
    /// the drift episode's detection-to-convergence latency (the MTTR
    /// sample) when this observation closes an episode, `None` when the
    /// resource was already in sync.
    pub fn observe_in_sync(&mut self, mount: &Path, now_ms: u64) -> Option<u64> {
        match self.resources.get_mut(mount) {
            Some(state) if state.phase != TwinPhase::InSync => {
                let mttr = now_ms.saturating_sub(state.detected_at_ms);
                state.phase = TwinPhase::InSync;
                state.attempts = 0;
                state.fingerprint = 0;
                Some(mttr)
            }
            Some(_) => None,
            None => {
                self.resources.insert(
                    mount.clone(),
                    ResourceState {
                        phase: TwinPhase::InSync,
                        fingerprint: 0,
                        attempts: 0,
                        detected_at_ms: now_ms,
                        next_attempt_ms: now_ms,
                    },
                );
                None
            }
        }
    }

    /// Records that `mount` drifted (diff fingerprint `fp`) and decides
    /// whether to fire a corrective transaction now. `repairable` is false
    /// when no repair can usefully be submitted (the device is down): the
    /// drift is tracked — and detection still fires — but the waker holds
    /// its attempts.
    pub fn observe_drift(
        &mut self,
        mount: &Path,
        fp: u64,
        now_ms: u64,
        repairable: bool,
    ) -> DriftObservation {
        let state = self
            .resources
            .entry(mount.clone())
            .or_insert(ResourceState {
                phase: TwinPhase::InSync,
                fingerprint: 0,
                attempts: 0,
                detected_at_ms: now_ms,
                next_attempt_ms: now_ms,
            });
        let mut obs = DriftObservation::default();
        if state.phase == TwinPhase::InSync {
            // New episode.
            state.phase = TwinPhase::Drifted;
            state.fingerprint = fp;
            state.attempts = 0;
            state.detected_at_ms = now_ms;
            state.next_attempt_ms = now_ms;
            obs.newly_detected = true;
        } else if state.fingerprint != fp {
            // The drift changed shape mid-episode (the device moved again,
            // or a repair partially landed): fresh attempts, same episode —
            // MTTR keeps measuring from first detection.
            state.fingerprint = fp;
            state.attempts = 0;
            state.next_attempt_ms = now_ms;
            if state.phase == TwinPhase::Degraded {
                state.phase = TwinPhase::Drifted;
            }
        }
        if !repairable || now_ms < state.next_attempt_ms {
            return obs;
        }
        if state.attempts >= self.max_attempts && state.phase != TwinPhase::Degraded {
            obs.escalated = true;
            state.phase = TwinPhase::Degraded;
        }
        obs.submit_attempt = Some(state.attempts);
        state.attempts = state.attempts.saturating_add(1);
        state.next_attempt_ms = now_ms
            + if state.phase == TwinPhase::Degraded {
                // Degraded resources trickle-retry at the cap so a healed
                // device still converges without operator action.
                self.cap_ms
            } else {
                if state.phase != TwinPhase::Reconciling {
                    state.phase = TwinPhase::Reconciling;
                }
                backoff_delay_ms(self.base_ms, self.cap_ms, state.attempts, mount)
            };
        obs
    }

    /// The tracked phase of `mount` (`None`: never observed).
    pub fn phase_of(&self, mount: &Path) -> Option<TwinPhase> {
        self.resources.get(mount).map(|s| s.phase)
    }

    /// Every tracked resource's phase.
    pub fn phases(&self) -> BTreeMap<Path, TwinPhase> {
        self.resources
            .iter()
            .map(|(p, s)| (p.clone(), s.phase))
            .collect()
    }

    /// `true` when every tracked resource is in sync.
    pub fn all_in_sync(&self) -> bool {
        self.resources
            .values()
            .all(|s| s.phase == TwinPhase::InSync)
    }

    /// Number of tracked resources.
    pub fn len(&self) -> usize {
        self.resources.len()
    }

    /// `true` when nothing has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.resources.is_empty()
    }

    /// Drops a resource (its device was decommissioned).
    pub fn forget(&mut self, mount: &Path) {
        self.resources.remove(mount);
    }
}

/// Outcome of a synchronous repair fixpoint ([`repair_fixpoint`]).
#[derive(Clone, Debug, Default)]
pub struct SyncRepairOutcome {
    /// The layers agree after the fixpoint (empty final diff).
    pub ok: bool,
    /// Corrective device calls that succeeded.
    pub executed: usize,
    /// Drifted paths observed before any correction (distinct diff paths of
    /// the first round).
    pub drifted: usize,
    /// Diffs of the last planned round that no rule could translate.
    pub unmatched: usize,
    /// Diffs remaining after the fixpoint.
    pub remaining: usize,
    /// Failed corrective calls (`action: error`), benign when the layers
    /// still converge.
    pub errors: Vec<String>,
}

/// Runs the synchronous diff → plan → invoke fixpoint the operator-facing
/// one-shot `repair` is built on (paper §4). Some corrections only become
/// possible after earlier ones (an image cannot be unimported while a rogue
/// VM references it), so it re-diffs and re-plans up to `rounds` times;
/// convergence — an empty final diff — is the success criterion.
pub fn repair_fixpoint(
    logical: &Tree,
    registry: &DeviceRegistry,
    scope: &Path,
    rules: &RepairRules,
    rounds: usize,
) -> SyncRepairOutcome {
    let mut out = SyncRepairOutcome::default();
    for round in 0..rounds.max(1) {
        let physical = registry.physical_tree();
        let diffs = logical.diff(&physical, scope);
        if round == 0 {
            let mut paths: Vec<&Path> = diffs.iter().map(DiffEntry::path).collect();
            paths.sort_unstable();
            paths.dedup();
            out.drifted = paths.len();
        }
        if diffs.is_empty() {
            break;
        }
        let plan = rules.plan(&diffs, logical);
        out.unmatched = plan.unmatched.len();
        if plan.actions.is_empty() {
            break;
        }
        for call in &plan.actions {
            match registry.invoke(call) {
                Ok(()) => out.executed += 1,
                Err(e) => out.errors.push(format!("{}: {e}", call.action)),
            }
        }
    }
    out.remaining = logical.diff(&registry.physical_tree(), scope).len();
    out.ok = out.remaining == 0;
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> TwinConfig {
        TwinConfig {
            enabled: true,
            interval_ms: 10,
            report_interval_ms: 10,
            backoff_base_ms: 100,
            backoff_cap_ms: 1_000,
            max_attempts: 3,
            critical_paths: vec![],
        }
    }

    fn mount() -> Path {
        Path::parse("/vmRoot/h1").unwrap()
    }

    #[test]
    fn backoff_schedule_doubles_to_cap_with_bounded_jitter() {
        let m = mount();
        for (attempt, nominal) in [(1u32, 100u64), (2, 200), (3, 400), (4, 800), (5, 1_000)] {
            let d = backoff_delay_ms(100, 1_000, attempt, &m);
            assert!(
                d >= nominal && d <= nominal + nominal / 4 + 1,
                "attempt {attempt}: {d} outside [{nominal}, {}]",
                nominal + nominal / 4 + 1
            );
            // Deterministic per (mount, attempt).
            assert_eq!(d, backoff_delay_ms(100, 1_000, attempt, &m));
        }
        // Huge attempt counts must not overflow.
        assert!(backoff_delay_ms(100, 1_000, u32::MAX, &m) <= 1_251);
    }

    #[test]
    fn new_drift_fires_immediately_then_backs_off() {
        let mut t = TwinTracker::new(&cfg());
        let m = mount();
        let obs = t.observe_drift(&m, 42, 1_000, true);
        assert!(obs.newly_detected);
        assert_eq!(obs.submit_attempt, Some(0));
        assert!(!obs.escalated);
        assert_eq!(t.phase_of(&m), Some(TwinPhase::Reconciling));
        // Idempotent re-detection: same fingerprint inside the backoff
        // window submits nothing and is not a new detection.
        let again = t.observe_drift(&m, 42, 1_001, true);
        assert_eq!(again, DriftObservation::default());
        // After the backoff elapses, the next attempt fires.
        let later = t.observe_drift(&m, 42, 1_000 + 2_000, true);
        assert_eq!(later.submit_attempt, Some(1));
        assert!(!later.newly_detected);
    }

    #[test]
    fn fingerprint_change_resets_attempts() {
        let mut t = TwinTracker::new(&cfg());
        let m = mount();
        assert_eq!(t.observe_drift(&m, 1, 0, true).submit_attempt, Some(0));
        assert_eq!(t.observe_drift(&m, 1, 10_000, true).submit_attempt, Some(1));
        // The drift mutated: attempts restart at 0 and fire immediately.
        let fresh = t.observe_drift(&m, 2, 10_001, true);
        assert_eq!(fresh.submit_attempt, Some(0));
        assert!(!fresh.newly_detected, "same episode, new shape");
    }

    #[test]
    fn escalates_after_max_attempts_and_keeps_trickling() {
        let mut t = TwinTracker::new(&cfg());
        let m = mount();
        let mut now = 0u64;
        let mut escalations = 0;
        let mut submits = 0;
        for _ in 0..20 {
            let obs = t.observe_drift(&m, 7, now, true);
            if obs.submit_attempt.is_some() {
                submits += 1;
            }
            if obs.escalated {
                escalations += 1;
                assert_eq!(t.phase_of(&m), Some(TwinPhase::Degraded));
            }
            now += 10_000; // Beyond any backoff, so every loop may fire.
        }
        assert_eq!(escalations, 1, "escalation fires exactly once");
        assert_eq!(t.phase_of(&m), Some(TwinPhase::Degraded));
        // Degraded resources keep retrying (trickle at the cap).
        assert_eq!(submits, 20);
        // And a healed device converges with an MTTR sample.
        let mttr = t.observe_in_sync(&m, now).unwrap();
        assert_eq!(mttr, now); // Detected at 0.
        assert_eq!(t.phase_of(&m), Some(TwinPhase::InSync));
        assert!(t.all_in_sync());
    }

    #[test]
    fn unrepairable_drift_is_tracked_but_never_fires() {
        let mut t = TwinTracker::new(&cfg());
        let m = mount();
        let obs = t.observe_drift(&m, 5, 0, false);
        assert!(obs.newly_detected);
        assert_eq!(obs.submit_attempt, None);
        assert_eq!(t.phase_of(&m), Some(TwinPhase::Drifted));
        // Once repairable (device back up), the first attempt fires.
        let up = t.observe_drift(&m, 5, 1, true);
        assert_eq!(up.submit_attempt, Some(0));
    }

    #[test]
    fn in_sync_observation_tracks_resource() {
        let mut t = TwinTracker::new(&cfg());
        let m = mount();
        assert!(t.is_empty());
        assert_eq!(t.observe_in_sync(&m, 0), None);
        assert_eq!(t.len(), 1);
        assert_eq!(t.phase_of(&m), Some(TwinPhase::InSync));
        assert_eq!(t.observe_in_sync(&m, 10), None, "no episode to close");
        t.forget(&m);
        assert!(t.is_empty());
    }

    #[test]
    fn convergence_mttr_measured_from_first_detection() {
        let mut t = TwinTracker::new(&cfg());
        let m = mount();
        t.observe_drift(&m, 1, 500, true);
        t.observe_drift(&m, 2, 700, true); // Shape change, same episode.
        assert_eq!(t.observe_in_sync(&m, 1_500), Some(1_000));
    }

    #[test]
    fn fingerprints_ignore_diff_order() {
        let a = DiffEntry::NodeRemoved {
            path: Path::parse("/x/1").unwrap(),
            entity: "vm".into(),
        };
        let b = DiffEntry::NodeAdded {
            path: Path::parse("/x/2").unwrap(),
            entity: "vm".into(),
        };
        assert_eq!(
            drift_fingerprint(&[a.clone(), b.clone()]),
            drift_fingerprint(&[b.clone(), a.clone()])
        );
        assert_ne!(drift_fingerprint(&[a]), drift_fingerprint(&[b]));
        assert_eq!(drift_fingerprint(&[]), drift_fingerprint(&[]));
    }

    #[test]
    fn feed_fans_out_and_prunes() {
        let feed = TwinFeed::new();
        let sub1 = feed.subscribe();
        let sub2 = feed.subscribe();
        assert_eq!(feed.subscriber_count(), 2);
        let ev = TwinEvent {
            at_ms: 1,
            path: mount(),
            phase: TwinPhase::Drifted,
            attempt: 0,
            detail: "test".into(),
        };
        feed.publish(&ev);
        assert_eq!(sub1.drain().len(), 1);
        assert_eq!(
            sub2.recv_timeout(Duration::from_millis(100)).unwrap().phase,
            TwinPhase::Drifted
        );
        drop(sub1);
        feed.publish(&ev);
        assert_eq!(feed.subscriber_count(), 1);
    }

    #[test]
    fn twin_txn_base_is_admin_invisible() {
        const { assert!(TWIN_TXN_BASE > crate::controller::ADMIN_TXN_BASE) }
    }
}

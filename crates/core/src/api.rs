//! The typed, versioned client API (paper §3, Figure 2 — the front door).
//!
//! This module is the supported way to talk to a running [`Tropic`]
//! platform:
//!
//! * [`TxnRequest`] — a builder for stored-procedure submissions carrying
//!   a [`Priority`] lane, an admission deadline, an idempotency key, and
//!   free-form labels.
//! * [`TxnHandle`] — the future-like handle a submission returns, with a
//!   non-blocking [`TxnHandle::try_outcome`] and an event-driven
//!   [`TxnHandle::wait`] (one coordination watch + the client's event
//!   channel; no fixed-interval polling).
//! * [`Subscription`] / [`TxnEvent`] — a streaming feed of transaction
//!   lifecycle transitions.
//! * [`AdminClient`] — the operator plane (`repair`, `reload`, signals),
//!   split off from the submission path.
//! * [`ApiError`] — the structured error taxonomy, partitioned into
//!   retryable and permanent failures.
//!
//! Requests travel to the controller in the versioned wire envelope of
//! [`crate::msg::Envelope`]; the legacy `submit`/`wait` methods on
//! [`crate::TropicClient`] remain as deprecated shims over this module.
//!
//! [`Tropic`]: crate::Tropic

#![warn(missing_docs)]

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Duration;

use serde::{Deserialize, Serialize};
use tropic_coord::{CoordClient, CoordError, CoordService, DistributedQueue, WatchKind};
use tropic_model::{Path, SharedClock, Value};

use crate::error::PlatformError;
use crate::msg::{encode_input, layout, AdminResult, InputMsg, Signal};
use crate::txn::{TxnAlias, TxnId, TxnOutcome, TxnRecord, TxnState};

/// Fallback wait bound for handles whose request carries no deadline.
const DEFAULT_WAIT: Duration = Duration::from_secs(60);

// ---------------------------------------------------------------------
// Priority lanes.
// ---------------------------------------------------------------------

/// Scheduling priority of a submission. Each priority maps to one durable
/// input-queue lane (`inputQ/hi|norm|batch`); the controller drains lanes
/// strictly in this order, so a `High` submission admitted behind a full
/// `Batch` backlog still reaches the scheduler first.
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub enum Priority {
    /// Latency-sensitive interactive work; drained first.
    High,
    /// The default lane.
    #[default]
    Normal,
    /// Bulk/background work; drained only when the other lanes are empty.
    Batch,
}

impl Priority {
    /// All priorities, in drain order (highest first).
    pub const ALL: [Priority; 3] = [Priority::High, Priority::Normal, Priority::Batch];

    /// The queue-lane segment under `inputQ` this priority maps to.
    pub fn lane(self) -> &'static str {
        match self {
            Priority::High => "hi",
            Priority::Normal => "norm",
            Priority::Batch => "batch",
        }
    }

    /// Dense index in drain order (0 = highest).
    pub fn index(self) -> usize {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Batch => 2,
        }
    }
}

// ---------------------------------------------------------------------
// Error taxonomy.
// ---------------------------------------------------------------------

/// Machine-readable classification persisted on records the *platform*
/// aborted (as opposed to aborts raised by procedure logic or constraint
/// checks). [`TxnOutcome::api_error`] lifts it back into an [`ApiError`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum AbortCode {
    /// The submission's deadline had already passed at admission.
    DeadlineExpired,
    /// The named stored procedure is not registered.
    UnknownProcedure,
    /// An operator (or a stall timeout) KILLed the transaction.
    Killed,
}

/// Structured client-facing errors, partitioned by [`ApiError::retryable`]:
/// retryable errors describe transient platform conditions (resubmitting
/// the same request may succeed); permanent errors describe requests that
/// can never succeed as written.
///
/// The taxonomy is serializable so the RPC frontend ([`crate::rpc`]) can
/// carry it across the wire verbatim — a remote caller sees the *same*
/// variants, and the same [`ApiError::retryable`] partition, as an
/// in-process one.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum ApiError {
    /// The request's deadline expired before the controller admitted it.
    /// Permanent: the deadline is part of the request.
    DeadlineExceeded {
        /// The rejected transaction.
        id: TxnId,
    },
    /// The named stored procedure is not registered. Permanent.
    UnknownProcedure(String),
    /// The request is structurally invalid (e.g. empty procedure name).
    /// Permanent.
    InvalidRequest(String),
    /// The transaction was KILLed by an operator or a stall timeout.
    /// Permanent for this transaction; the caller decides about resubmission.
    Killed {
        /// The killed transaction.
        id: TxnId,
    },
    /// Waiting for an outcome outran its bound; the transaction may still
    /// finalize later. Retryable (keep waiting or re-poll the handle).
    WaitTimeout {
        /// The transaction still in flight.
        id: TxnId,
    },
    /// The coordination service failed or lost quorum. Retryable.
    Coordination(String),
    /// The platform is shutting down. Retryable (against a new platform).
    ShuttingDown,
    /// An administrative operation failed. Permanent.
    Admin(String),
    /// The peer spoke a wire version newer than this build understands.
    /// Permanent until one side is upgraded.
    UnsupportedWireVersion {
        /// The version the peer sent.
        version: u32,
    },
    /// A transport-level failure reaching (or talking to) the RPC server:
    /// connection refused, reset, or an unsynchronized frame stream.
    /// Retryable — but the failed call may still have taken effect
    /// server-side (e.g. a submit whose reply was lost), so resubmitting a
    /// `Submit` is only duplicate-safe with an idempotency key.
    Transport(String),
    /// An observer replica's staleness lease lapsed: the quorum stopped
    /// renewing it, so data served from (or fan-out gated on) that
    /// observer could be unboundedly stale. Sent as the typed close
    /// reason on observer-backed streams — distinguishing it from
    /// [`ApiError::ShuttingDown`], the planned-teardown close. Retryable:
    /// the lease heals once the observer reaches quorum again. Additive in
    /// wire version 1: pre-observer peers treat the frame as unknown.
    LeaseExpired {
        /// Id of the observer replica whose lease lapsed.
        observer: u64,
    },
}

impl ApiError {
    /// Whether resubmitting the same request can ever succeed.
    pub fn retryable(&self) -> bool {
        matches!(
            self,
            ApiError::WaitTimeout { .. }
                | ApiError::Coordination(_)
                | ApiError::ShuttingDown
                | ApiError::Transport(_)
                | ApiError::LeaseExpired { .. }
        )
    }
}

impl std::fmt::Display for ApiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ApiError::DeadlineExceeded { id } => {
                write!(f, "txn {id}: deadline expired before admission")
            }
            ApiError::UnknownProcedure(name) => write!(f, "unknown procedure: {name}"),
            ApiError::InvalidRequest(why) => write!(f, "invalid request: {why}"),
            ApiError::Killed { id } => write!(f, "txn {id} was killed"),
            ApiError::WaitTimeout { id } => {
                write!(f, "timed out waiting for txn {id} (still in flight)")
            }
            ApiError::Coordination(s) => write!(f, "coordination error: {s}"),
            ApiError::ShuttingDown => write!(f, "platform is shutting down"),
            ApiError::Admin(s) => write!(f, "admin operation failed: {s}"),
            ApiError::UnsupportedWireVersion { version } => {
                write!(
                    f,
                    "unsupported wire version {version} (this build speaks {})",
                    crate::msg::WIRE_VERSION
                )
            }
            ApiError::Transport(s) => write!(f, "transport error: {s}"),
            ApiError::LeaseExpired { observer } => {
                write!(f, "observer {observer} staleness lease expired")
            }
        }
    }
}

impl std::error::Error for ApiError {}

impl From<CoordError> for ApiError {
    fn from(e: CoordError) -> Self {
        match e {
            CoordError::LeaseExpired { observer } => ApiError::LeaseExpired {
                observer: observer as u64,
            },
            other => ApiError::Coordination(other.to_string()),
        }
    }
}

impl From<crate::msg::WireError> for ApiError {
    fn from(e: crate::msg::WireError) -> Self {
        match e {
            crate::msg::WireError::UnsupportedVersion(version) => {
                ApiError::UnsupportedWireVersion { version }
            }
            crate::msg::WireError::Malformed(s) => ApiError::InvalidRequest(s),
        }
    }
}

impl From<PlatformError> for ApiError {
    fn from(e: PlatformError) -> Self {
        match e {
            PlatformError::Coord(s) => ApiError::Coordination(s),
            PlatformError::UnknownProcedure(n) => ApiError::UnknownProcedure(n),
            PlatformError::Timeout => ApiError::WaitTimeout { id: 0 },
            PlatformError::ShuttingDown => ApiError::ShuttingDown,
            PlatformError::Admin(s) => ApiError::Admin(s),
        }
    }
}

impl From<ApiError> for PlatformError {
    fn from(e: ApiError) -> Self {
        match e {
            ApiError::Coordination(s) => PlatformError::Coord(s),
            ApiError::UnknownProcedure(n) => PlatformError::UnknownProcedure(n),
            ApiError::WaitTimeout { .. } => PlatformError::Timeout,
            ApiError::ShuttingDown => PlatformError::ShuttingDown,
            ApiError::Admin(s) => PlatformError::Admin(s),
            other => PlatformError::Admin(other.to_string()),
        }
    }
}

impl TxnOutcome {
    /// Lifts a platform-rejected outcome into the typed error taxonomy.
    /// Returns `None` for committed transactions and for aborts raised by
    /// procedure logic or constraint checks (those are application
    /// outcomes, not API errors).
    pub fn api_error(&self) -> Option<ApiError> {
        match self.abort_code? {
            AbortCode::DeadlineExpired => Some(ApiError::DeadlineExceeded { id: self.id }),
            AbortCode::UnknownProcedure => {
                // The record's error reads "unknown procedure `name`";
                // carry just the name, falling back to the full message.
                let msg = self.error.clone().unwrap_or_default();
                let name = msg
                    .strip_prefix("unknown procedure `")
                    .and_then(|rest| rest.strip_suffix('`'))
                    .map(str::to_owned)
                    .unwrap_or(msg);
                Some(ApiError::UnknownProcedure(name))
            }
            AbortCode::Killed => Some(ApiError::Killed { id: self.id }),
        }
    }
}

// ---------------------------------------------------------------------
// Request builder.
// ---------------------------------------------------------------------

/// A typed stored-procedure submission, assembled builder-style:
///
/// ```no_run
/// use std::time::Duration;
/// use tropic_core::api::{Priority, TxnRequest};
///
/// let req = TxnRequest::new("spawnVM")
///     .arg("web-1")
///     .arg("template-linux")
///     .priority(Priority::High)
///     .deadline(Duration::from_secs(5))
///     .idempotency_key("spawn-web-1")
///     .label("tenant", "acme");
/// ```
///
/// Requests are serializable so [`crate::rpc::RemoteClient`] can ship the
/// *same* builder output over a socket; a relative [`TxnRequest::deadline`]
/// is resolved against the platform clock when the server admits the
/// request (so it spans queueing, not the network hop).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TxnRequest {
    proc_name: String,
    args: Vec<Value>,
    priority: Priority,
    deadline: Option<Duration>,
    deadline_at_ms: Option<u64>,
    idempotency_key: Option<String>,
    labels: Vec<(String, String)>,
}

impl TxnRequest {
    /// Starts a request for the named stored procedure.
    pub fn new(proc_name: impl Into<String>) -> Self {
        TxnRequest {
            proc_name: proc_name.into(),
            args: Vec::new(),
            priority: Priority::Normal,
            deadline: None,
            deadline_at_ms: None,
            idempotency_key: None,
            labels: Vec::new(),
        }
    }

    /// Appends one procedure argument.
    pub fn arg(mut self, value: impl Into<Value>) -> Self {
        self.args.push(value.into());
        self
    }

    /// Appends a batch of procedure arguments.
    pub fn args(mut self, args: impl IntoIterator<Item = Value>) -> Self {
        self.args.extend(args);
        self
    }

    /// Selects the scheduling lane (default [`Priority::Normal`]).
    pub fn priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Sets an admission deadline relative to submission time: if the
    /// controller has not admitted the submission by then, it aborts with
    /// [`AbortCode::DeadlineExpired`] instead of running.
    pub fn deadline(mut self, after: Duration) -> Self {
        self.deadline = Some(after);
        self
    }

    /// Sets an absolute admission deadline on the platform clock
    /// (milliseconds). Overrides [`TxnRequest::deadline`].
    pub fn deadline_at(mut self, at_ms: u64) -> Self {
        self.deadline_at_ms = Some(at_ms);
        self
    }

    /// Attaches an idempotency key: a resubmission carrying a key the
    /// controller has already admitted resolves to the *original*
    /// transaction's outcome instead of executing again. The dedup window
    /// is the record-retention window (`gc_grace_ms`).
    pub fn idempotency_key(mut self, key: impl Into<String>) -> Self {
        self.idempotency_key = Some(key.into());
        self
    }

    /// Attaches a free-form label, carried into the durable record.
    pub fn label(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.labels.push((key.into(), value.into()));
        self
    }

    /// The stored-procedure name.
    pub fn proc_name(&self) -> &str {
        &self.proc_name
    }

    /// The scheduling lane.
    pub fn priority_lane(&self) -> Priority {
        self.priority
    }

    /// Validates the request and lowers it to a wire message, resolving
    /// the relative deadline against `now_ms`.
    pub(crate) fn into_msg(
        self,
        id: TxnId,
        now_ms: u64,
    ) -> Result<(InputMsg, Option<u64>), ApiError> {
        if self.proc_name.is_empty() {
            return Err(ApiError::InvalidRequest("empty procedure name".into()));
        }
        let deadline_ms = self.deadline_at_ms.or_else(|| {
            self.deadline
                .map(|d| now_ms.saturating_add(d.as_millis() as u64))
        });
        Ok((
            InputMsg::Submit {
                id,
                proc_name: self.proc_name,
                args: self.args,
                submitted_ms: now_ms,
                priority: self.priority,
                deadline_ms,
                idempotency_key: self.idempotency_key,
                labels: self.labels,
            },
            deadline_ms,
        ))
    }
}

// ---------------------------------------------------------------------
// Transaction handle.
// ---------------------------------------------------------------------

/// A handle to one submitted transaction, returned by
/// [`crate::TropicClient::submit_request`]. Outcome reads follow
/// idempotency aliases transparently: the outcome's `id` is the id of the
/// transaction that actually ran.
pub struct TxnHandle<'c> {
    client: &'c CoordClient,
    clock: SharedClock,
    id: TxnId,
    deadline_ms: Option<u64>,
    /// Resolved alias target, cached once discovered.
    resolved: std::cell::Cell<Option<TxnId>>,
}

impl<'c> TxnHandle<'c> {
    pub(crate) fn new(
        client: &'c CoordClient,
        clock: SharedClock,
        id: TxnId,
        deadline_ms: Option<u64>,
    ) -> Self {
        TxnHandle {
            client,
            clock,
            id,
            deadline_ms,
            resolved: std::cell::Cell::new(None),
        }
    }

    /// The id assigned to this submission. If the submission deduplicated
    /// onto an earlier transaction, the outcome will carry that original
    /// id instead (see [`TxnHandle::resolved_id`]).
    pub fn id(&self) -> TxnId {
        self.id
    }

    /// The id of the transaction this handle actually tracks: the alias
    /// target once idempotency dedup has been observed, otherwise the
    /// submission id.
    pub fn resolved_id(&self) -> TxnId {
        self.resolved.get().unwrap_or(self.id)
    }

    /// The admission deadline carried by the request, if any (platform
    /// clock, ms).
    pub fn deadline_ms(&self) -> Option<u64> {
        self.deadline_ms
    }

    fn target_id(&self) -> Result<TxnId, ApiError> {
        if let Some(t) = self.resolved.get() {
            return Ok(t);
        }
        // An alias is persisted at the submission's own record path; a
        // real record there parses as `TxnRecord`, not `TxnAlias`.
        if let Some(alias) = self.client.get_json::<TxnAlias>(&layout::txn(self.id))? {
            self.resolved.set(Some(alias.alias_of));
            return Ok(alias.alias_of);
        }
        Ok(self.id)
    }

    /// Non-blocking outcome poll: `Ok(Some(..))` once the transaction
    /// reached a terminal state, `Ok(None)` while still in flight.
    pub fn try_outcome(&self) -> Result<Option<TxnOutcome>, ApiError> {
        let target = self.target_id()?;
        let Some(rec) = self.client.get_json::<TxnRecord>(&layout::txn(target))? else {
            return Ok(None);
        };
        if !rec.state.is_final() {
            return Ok(None);
        }
        Ok(Some(outcome_of(target, &rec)))
    }

    /// Blocks until the transaction reaches a terminal state, driven by
    /// coordination watches: the handle arms a watch on the record, blocks
    /// on the client's event channel until the deadline, and re-checks
    /// only when an event fires — no fixed-interval polling.
    ///
    /// The bound is the request's deadline when one was set, otherwise 60
    /// seconds; use [`TxnHandle::wait_timeout`] for an explicit bound.
    pub fn wait(&self) -> Result<TxnOutcome, ApiError> {
        let timeout = match self.deadline_ms {
            Some(d) => Duration::from_millis(d.saturating_sub(self.clock.now_ms()).max(1)),
            None => DEFAULT_WAIT,
        };
        self.wait_timeout(timeout)
    }

    /// [`TxnHandle::wait`] with an explicit bound.
    pub fn wait_timeout(&self, timeout: Duration) -> Result<TxnOutcome, ApiError> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            if let Some(outcome) = self.try_outcome()? {
                return Ok(outcome);
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return Err(ApiError::WaitTimeout { id: self.id });
            }
            // One watch on the record node (which is also where an alias
            // would appear), then block on the event channel for the whole
            // remaining window. Watches are one-shot, so after an event
            // fires the loop re-checks the outcome and re-arms.
            self.client
                .watch(&layout::txn(self.target_id()?), WatchKind::Node)?;
            if let Some(outcome) = self.try_outcome()? {
                return Ok(outcome);
            }
            let _ = self.client.wait_event(deadline - now);
        }
    }
}

fn outcome_of(id: TxnId, rec: &TxnRecord) -> TxnOutcome {
    TxnOutcome {
        id,
        state: rec.state,
        error: rec.error.clone(),
        abort_code: rec.abort_code,
        latency_ms: rec.latency_ms().unwrap_or(0),
    }
}

// ---------------------------------------------------------------------
// Event subscriptions.
// ---------------------------------------------------------------------

/// One observed transaction lifecycle transition.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TxnEvent {
    /// The transaction.
    pub id: TxnId,
    /// Stored-procedure name.
    pub proc_name: String,
    /// The state the transaction was observed entering.
    pub state: TxnState,
    /// Scheduling lane.
    pub priority: Priority,
    /// Observation timestamp (platform clock, ms).
    pub at_ms: u64,
    /// Failure description, for terminal failures.
    pub error: Option<String>,
}

/// A streaming feed of [`TxnEvent`]s, produced by a dedicated
/// coordination session that watches the transaction-record subtree.
///
/// Delivery is *eventually consistent and coalescing*: every transaction's
/// terminal state is always delivered, but a fast intermediate transition
/// (e.g. `Accepted` → `Started` within one watch window) may be observed
/// only as its latest state. Dropping the subscription stops the feed.
pub struct Subscription {
    rx: mpsc::Receiver<TxnEvent>,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

static SUBSCRIBER_SEQ: AtomicU64 = AtomicU64::new(0);

impl Subscription {
    pub(crate) fn start(coord: Arc<CoordService>, clock: SharedClock) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let (tx, rx) = mpsc::channel();
        let name = format!(
            "tropic-subscriber-{}",
            SUBSCRIBER_SEQ.fetch_add(1, Ordering::SeqCst)
        );
        let thread = std::thread::Builder::new()
            .name(name.clone())
            .spawn(move || subscription_thread(&coord, &name, clock, &stop2, &tx))
            .expect("spawn subscription thread");
        Subscription {
            rx,
            stop,
            thread: Some(thread),
        }
    }

    /// Returns the next buffered event without blocking.
    pub fn try_recv(&self) -> Option<TxnEvent> {
        self.rx.try_recv().ok()
    }

    /// Blocks up to `timeout` for the next event.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<TxnEvent> {
        self.rx.recv_timeout(timeout).ok()
    }

    /// Drains every currently-buffered event.
    pub fn drain(&self) -> Vec<TxnEvent> {
        let mut out = Vec::new();
        while let Some(ev) = self.try_recv() {
            out.push(ev);
        }
        out
    }
}

impl Drop for Subscription {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

fn subscription_thread(
    coord: &CoordService,
    name: &str,
    clock: SharedClock,
    stop: &AtomicBool,
    tx: &mpsc::Sender<TxnEvent>,
) {
    let client = coord.connect(name);
    let _keepalive = client.keepalive();
    let mut last_seen: HashMap<TxnId, TxnState> = HashMap::new();
    // One-shot watches currently armed, so idle loops neither re-register
    // duplicates nor re-read records that cannot change.
    let mut children_armed = false;
    let mut armed_nodes: HashSet<Path> = HashSet::new();
    while !stop.load(Ordering::SeqCst) {
        // Arm the subtree watch first so a record landing between the scan
        // and the wait still wakes us.
        if !children_armed {
            children_armed = client.watch(&layout::txns(), WatchKind::Children).is_ok();
            if !children_armed && client.ping().is_err() {
                return;
            }
        }
        if scan_records(&client, &clock, &mut last_seen, &mut armed_nodes, tx).is_err() {
            // Session or quorum trouble: the feed cannot continue on a
            // dead session; end the stream (receivers see a closed
            // channel).
            if client.ping().is_err() {
                return;
            }
        }
        // Block on the event channel; the bounded slice only caps how long
        // a missed watch (armed after the triggering write) goes unnoticed.
        if let Some(fired) = client.wait_event(Duration::from_millis(200)) {
            // The fired watch is one-shot: mark it for re-arming.
            match fired.event {
                tropic_coord::StoreEvent::ChildrenChanged(_) => children_armed = false,
                tropic_coord::StoreEvent::Created(p)
                | tropic_coord::StoreEvent::Deleted(p)
                | tropic_coord::StoreEvent::DataChanged(p) => {
                    armed_nodes.remove(&p);
                }
            }
        }
    }
}

fn scan_records(
    client: &CoordClient,
    clock: &SharedClock,
    last_seen: &mut HashMap<TxnId, TxnState>,
    armed_nodes: &mut HashSet<Path>,
    tx: &mpsc::Sender<TxnEvent>,
) -> Result<(), CoordError> {
    let mut ids: Vec<TxnId> = client
        .get_children(&layout::txns())?
        .into_iter()
        .filter_map(|name| name.parse::<TxnId>().ok())
        .filter(|id| *id < crate::controller::ADMIN_TXN_BASE)
        .collect();
    ids.sort_unstable();
    let mut present: HashSet<TxnId> = HashSet::new();
    for id in ids {
        present.insert(id);
        // Terminal states never change again; skip the read entirely.
        if last_seen.get(&id).map(TxnState::is_final).unwrap_or(false) {
            continue;
        }
        // Alias nodes parse as `None` here and are skipped: the original
        // transaction's own record produces the events.
        let Some(rec) = client.get_json::<TxnRecord>(&layout::txn(id))? else {
            continue;
        };
        let changed = last_seen.get(&id) != Some(&rec.state);
        if changed {
            last_seen.insert(id, rec.state);
            let _ = tx.send(TxnEvent {
                id,
                proc_name: rec.proc_name.clone(),
                state: rec.state,
                priority: rec.priority,
                at_ms: clock.now_ms(),
                error: rec.error.clone(),
            });
        }
        if !rec.state.is_final() {
            // Data watch so an in-place state transition (same child set)
            // wakes the scan; armed at most once until it fires.
            let path = layout::txn(id);
            if !armed_nodes.contains(&path) && client.watch(&path, WatchKind::Node).is_ok() {
                armed_nodes.insert(path);
            }
        }
    }
    // Forget garbage-collected records (and their pending watch marks).
    last_seen.retain(|id, _| present.contains(id));
    armed_nodes.retain(|path| {
        path.leaf()
            .and_then(|name| name.parse::<TxnId>().ok())
            .map(|id| present.contains(&id))
            .unwrap_or(false)
    });
    Ok(())
}

// ---------------------------------------------------------------------
// Operator plane.
// ---------------------------------------------------------------------

/// The operator-facing client: reconciliation (`repair`/`reload`, paper
/// §4) and transaction signals, split off from the submission path so the
/// data plane and the control plane evolve independently. Obtain one with
/// [`crate::Tropic::admin`].
pub struct AdminClient {
    client: CoordClient,
    _keepalive: tropic_coord::KeepAlive,
    next_admin_id: Arc<AtomicU64>,
    clock: SharedClock,
}

impl AdminClient {
    pub(crate) fn new(
        client: CoordClient,
        next_admin_id: Arc<AtomicU64>,
        clock: SharedClock,
    ) -> Self {
        let keepalive = client.keepalive();
        AdminClient {
            client,
            _keepalive: keepalive,
            next_admin_id,
            clock,
        }
    }

    /// Runs `repair` over `scope` (push the logical layer's view onto
    /// drifted devices), blocking up to `timeout` for the result.
    pub fn repair(&self, scope: &Path, timeout: Duration) -> Result<AdminResult, ApiError> {
        self.admin_op(scope, timeout, true)
    }

    /// Runs `reload` over `scope` (replace the logical subtree with
    /// freshly-retrieved physical state), blocking up to `timeout`.
    pub fn reload(&self, scope: &Path, timeout: Duration) -> Result<AdminResult, ApiError> {
        self.admin_op(scope, timeout, false)
    }

    /// Sends a TERM or KILL signal to a transaction (paper §4). Signals
    /// ride the high-priority lane so they overtake queued submissions.
    pub fn signal(&self, id: TxnId, signal: Signal) -> Result<(), ApiError> {
        let q = DistributedQueue::new(&self.client, layout::input_lane(Priority::High))?;
        q.enqueue(encode_input(InputMsg::Signal { id, signal }))?;
        Ok(())
    }

    fn admin_op(
        &self,
        scope: &Path,
        timeout: Duration,
        repair: bool,
    ) -> Result<AdminResult, ApiError> {
        let admin_id = self.enqueue_admin(scope, repair)?;
        self.wait_admin(admin_id, timeout)
    }

    /// Enqueues one repair/reload request and returns its admin id, without
    /// waiting for the result. Split from [`AdminClient::wait_admin`] so a
    /// caller that must interleave the wait with its own cancellation
    /// checks (the RPC frontend's stop flag) can slice it without
    /// re-enqueueing the operation.
    pub(crate) fn enqueue_admin(&self, scope: &Path, repair: bool) -> Result<u64, ApiError> {
        let admin_id = self.next_admin_id.fetch_add(1, Ordering::SeqCst);
        let msg = if repair {
            InputMsg::Repair {
                scope: scope.clone(),
                admin_id,
            }
        } else {
            InputMsg::Reload {
                scope: scope.clone(),
                admin_id,
            }
        };
        let q = DistributedQueue::new(&self.client, layout::input_lane(Priority::High))?;
        q.enqueue(encode_input(msg))?;
        Ok(admin_id)
    }

    /// Blocks up to `timeout` for the result of an already-enqueued admin
    /// operation. Safe to call repeatedly for the same id.
    pub(crate) fn wait_admin(
        &self,
        admin_id: u64,
        timeout: Duration,
    ) -> Result<AdminResult, ApiError> {
        let result_path = layout::admin(admin_id);
        let deadline = std::time::Instant::now() + timeout;
        // Watch-then-wait: arm one watch on the result node, block on the
        // event channel until the deadline, re-check on every event.
        loop {
            if let Some(result) = self.client.get_json::<AdminResult>(&result_path)? {
                return Ok(result);
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return Err(ApiError::WaitTimeout { id: admin_id });
            }
            self.client.watch(&result_path, WatchKind::Node)?;
            if let Some(result) = self.client.get_json::<AdminResult>(&result_path)? {
                return Ok(result);
            }
            let _ = self.client.wait_event(deadline - now);
        }
    }

    /// The platform clock (for computing absolute deadlines).
    pub fn clock(&self) -> &SharedClock {
        &self.clock
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_drain_order_and_lanes() {
        assert_eq!(Priority::default(), Priority::Normal);
        assert_eq!(Priority::ALL.map(|p| p.lane()), ["hi", "norm", "batch"]);
        for (i, p) in Priority::ALL.into_iter().enumerate() {
            assert_eq!(p.index(), i);
        }
        assert!(Priority::High < Priority::Normal && Priority::Normal < Priority::Batch);
    }

    #[test]
    fn priority_serde_roundtrip() {
        for p in Priority::ALL {
            let json = serde_json::to_vec(&p).unwrap();
            let back: Priority = serde_json::from_slice(&json).unwrap();
            assert_eq!(back, p);
        }
    }

    #[test]
    fn retryable_partition() {
        assert!(ApiError::WaitTimeout { id: 1 }.retryable());
        assert!(ApiError::Coordination("quorum lost".into()).retryable());
        assert!(ApiError::ShuttingDown.retryable());
        assert!(ApiError::Transport("connection reset".into()).retryable());
        assert!(!ApiError::DeadlineExceeded { id: 1 }.retryable());
        assert!(!ApiError::UnknownProcedure("x".into()).retryable());
        assert!(!ApiError::InvalidRequest("empty".into()).retryable());
        assert!(!ApiError::Killed { id: 1 }.retryable());
        assert!(!ApiError::Admin("failed".into()).retryable());
        assert!(!ApiError::UnsupportedWireVersion { version: 9 }.retryable());
    }

    #[test]
    fn api_error_serde_preserves_retryable_partition() {
        let errors = [
            ApiError::DeadlineExceeded { id: 1 },
            ApiError::UnknownProcedure("x".into()),
            ApiError::InvalidRequest("bad".into()),
            ApiError::Killed { id: 2 },
            ApiError::WaitTimeout { id: 3 },
            ApiError::Coordination("lost".into()),
            ApiError::ShuttingDown,
            ApiError::Admin("failed".into()),
            ApiError::UnsupportedWireVersion { version: 9 },
            ApiError::Transport("reset".into()),
        ];
        for err in errors {
            let bytes = serde_json::to_vec(&err).unwrap();
            let back: ApiError = serde_json::from_slice(&bytes).unwrap();
            assert_eq!(back, err);
            assert_eq!(back.retryable(), err.retryable());
        }
    }

    #[test]
    fn wire_error_lifts_typed() {
        let e: ApiError = crate::msg::WireError::UnsupportedVersion(7).into();
        assert_eq!(e, ApiError::UnsupportedWireVersion { version: 7 });
        assert!(!e.retryable());
        let e: ApiError = crate::msg::WireError::Malformed("junk".into()).into();
        assert!(matches!(e, ApiError::InvalidRequest(_)));
    }

    #[test]
    fn outcome_lifts_abort_codes() {
        let mut rec = TxnRecord::new(9, "spawnVM", vec![], 0);
        rec.state = TxnState::Aborted;
        rec.abort_code = Some(AbortCode::DeadlineExpired);
        let out = outcome_of(9, &rec);
        let err = out.api_error().expect("typed error");
        assert_eq!(err, ApiError::DeadlineExceeded { id: 9 });
        assert!(!err.retryable());

        rec.abort_code = None;
        rec.error = Some("no capacity".into());
        assert_eq!(
            outcome_of(9, &rec).api_error(),
            None,
            "logic aborts are not API errors"
        );
    }

    #[test]
    fn request_builder_lowers_to_wire_msg() {
        let req = TxnRequest::new("spawnVM")
            .arg("vm1")
            .args(vec![Value::Int(2_048)])
            .priority(Priority::Batch)
            .deadline(Duration::from_millis(500))
            .idempotency_key("k")
            .label("tenant", "acme");
        assert_eq!(req.proc_name(), "spawnVM");
        assert_eq!(req.priority_lane(), Priority::Batch);
        let (msg, deadline) = req.into_msg(3, 1_000).unwrap();
        assert_eq!(deadline, Some(1_500));
        match msg {
            InputMsg::Submit {
                id,
                proc_name,
                args,
                priority,
                deadline_ms,
                idempotency_key,
                labels,
                submitted_ms,
            } => {
                assert_eq!((id, submitted_ms), (3, 1_000));
                assert_eq!(proc_name, "spawnVM");
                assert_eq!(args, vec![Value::from("vm1"), Value::Int(2_048)]);
                assert_eq!(priority, Priority::Batch);
                assert_eq!(deadline_ms, Some(1_500));
                assert_eq!(idempotency_key.as_deref(), Some("k"));
                assert_eq!(labels.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn txn_request_serde_roundtrip() {
        let req = TxnRequest::new("spawnVM")
            .arg("vm1")
            .priority(Priority::High)
            .deadline(Duration::from_millis(750))
            .idempotency_key("k")
            .label("tenant", "acme");
        let bytes = serde_json::to_vec(&req).unwrap();
        let back: TxnRequest = serde_json::from_slice(&bytes).unwrap();
        let (msg_a, dl_a) = req.into_msg(5, 1_000).unwrap();
        let (msg_b, dl_b) = back.into_msg(5, 1_000).unwrap();
        assert_eq!(dl_a, dl_b);
        assert_eq!(
            serde_json::to_vec(&msg_a).unwrap(),
            serde_json::to_vec(&msg_b).unwrap(),
            "wire roundtrip lowers to the identical queue message"
        );
    }

    #[test]
    fn absolute_deadline_overrides_relative() {
        let req = TxnRequest::new("p")
            .deadline(Duration::from_secs(10))
            .deadline_at(42);
        let (_, deadline) = req.into_msg(1, 1_000).unwrap();
        assert_eq!(deadline, Some(42));
    }

    #[test]
    fn empty_proc_name_is_invalid() {
        let err = TxnRequest::new("").into_msg(1, 0).unwrap_err();
        assert!(matches!(err, ApiError::InvalidRequest(_)));
        assert!(!err.retryable());
    }
}

//! Messages flowing through the durable queues and signal znodes.
//!
//! Clients and workers talk to the controller exclusively through `inputQ`
//! (paper Figure 1): clients enqueue transaction submissions, workers
//! enqueue execution results, and operators enqueue reconciliation requests.
//! The controller feeds runnable transactions to the workers through `phyQ`.
//!
//! ## Wire versioning
//!
//! Every message enqueued by this build is wrapped in a versioned
//! [`Envelope`] (`{"v": 1, "msg": ...}`). Decoding accepts both the
//! envelope and the bare legacy `InputMsg` encoding that pre-versioning
//! builds wrote, so submissions queued by an old client survive a rolling
//! upgrade of the controllers. The policy is:
//!
//! * **Additive change** (new optional field, new variant): keep `v` as is.
//!   New fields carry `#[serde(default)]`, and decoders ignore unknown
//!   fields, so old and new builds interoperate in both directions.
//! * **Breaking change** (field removed or re-interpreted): bump
//!   [`WIRE_VERSION`]. A decoder rejects envelopes newer than itself with
//!   [`WireError::UnsupportedVersion`] rather than mis-reading them.

use serde::{Deserialize, Serialize};
use tropic_model::{Path, Value};

use crate::api::Priority;
use crate::physical::PhysicalOutcome;
use crate::txn::TxnId;

/// Version stamped on every [`Envelope`] this build writes.
pub const WIRE_VERSION: u32 = 1;

/// The versioned wire frame wrapping every queued message.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Envelope {
    /// Wire-format version (see the module docs for the bump policy).
    pub v: u32,
    /// The payload.
    pub msg: InputMsg,
}

/// Errors decoding a queued message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The envelope version is newer than this build understands.
    UnsupportedVersion(u32),
    /// The bytes parse as neither an [`Envelope`] nor a legacy `InputMsg`.
    Malformed(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported wire version {v} (this build speaks {WIRE_VERSION})"
                )
            }
            WireError::Malformed(e) => write!(f, "malformed message: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Encodes a message in the current wire format (enveloped, versioned).
pub fn encode_input(msg: InputMsg) -> Vec<u8> {
    serde_json::to_vec(&Envelope {
        v: WIRE_VERSION,
        msg,
    })
    .expect("serializable message")
}

/// The version field alone, probed before the payload is touched: a
/// future-version envelope must be rejected as [`WireError::UnsupportedVersion`]
/// even when its payload no longer parses as this build's `InputMsg`.
#[derive(Deserialize)]
struct VersionProbe {
    v: u32,
}

/// Probes the `v` field of an encoded envelope without touching the
/// payload. `None` when the bytes carry no version field at all (legacy
/// encoding or garbage). The RPC frame boundary uses this so a
/// future-version envelope is rejected typed, never misparsed.
pub(crate) fn wire_version_of(bytes: &[u8]) -> Option<u32> {
    serde_json::from_slice::<VersionProbe>(bytes)
        .ok()
        .map(|p| p.v)
}

/// Decodes a queued message, accepting the current enveloped format and
/// the bare legacy encoding (compatibility decode for submissions queued
/// before the upgrade).
pub fn decode_input(bytes: &[u8]) -> Result<InputMsg, WireError> {
    if let Ok(probe) = serde_json::from_slice::<VersionProbe>(bytes) {
        if probe.v > WIRE_VERSION {
            return Err(WireError::UnsupportedVersion(probe.v));
        }
        return serde_json::from_slice::<Envelope>(bytes)
            .map(|env| env.msg)
            .map_err(|e| WireError::Malformed(e.to_string()));
    }
    // No version field: fall back to the un-versioned v0 encoding.
    serde_json::from_slice::<InputMsg>(bytes).map_err(|e| WireError::Malformed(e.to_string()))
}

/// Signals for unresponsive transactions (paper §4).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Signal {
    /// Graceful abort: the worker stops, undoes the executed prefix, and
    /// reports an abort, keeping the layers consistent.
    Term,
    /// Immediate abort in the logical layer only; the worker abandons the
    /// transaction and any cross-layer inconsistency is left to `repair`.
    Kill,
}

/// A message consumed by the (leader) controller from `inputQ`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum InputMsg {
    /// A client submitted a transaction.
    Submit {
        /// Client-assigned transaction id (ids are unique platform-wide,
        /// making re-submission after failover idempotent).
        id: TxnId,
        /// Stored-procedure name.
        proc_name: String,
        /// Procedure arguments.
        args: Vec<Value>,
        /// Submission timestamp (platform clock, ms).
        submitted_ms: u64,
        /// Scheduling lane (absent on legacy submissions → `Normal`).
        #[serde(default)]
        priority: Priority,
        /// Admission deadline (platform clock, ms): the controller aborts
        /// the submission instead of admitting it past this instant.
        #[serde(default)]
        deadline_ms: Option<u64>,
        /// Client-chosen dedup key: a resubmission carrying a key already
        /// admitted resolves to the original transaction instead of
        /// running again.
        #[serde(default)]
        idempotency_key: Option<String>,
        /// Free-form key/value labels carried into the durable record.
        #[serde(default)]
        labels: Vec<(String, String)>,
    },
    /// A worker finished a transaction's physical execution.
    Result {
        /// The transaction.
        id: TxnId,
        /// How physical execution ended.
        outcome: PhysicalOutcome,
    },
    /// Operator request: reconcile physical state toward the logical layer
    /// within `scope` (paper §4, *repair*).
    Repair {
        /// Subtree to reconcile.
        scope: Path,
        /// Identifier the operator waits on for the result.
        admin_id: u64,
    },
    /// Operator request: replace the logical subtree at `scope` with freshly
    /// retrieved physical state (paper §4, *reload*).
    Reload {
        /// Subtree to reload.
        scope: Path,
        /// Identifier the operator waits on for the result.
        admin_id: u64,
    },
    /// Operator request: signal an unresponsive transaction.
    Signal {
        /// The transaction.
        id: TxnId,
        /// TERM or KILL.
        signal: Signal,
    },
}

/// A task in `phyQ`: the worker loads the full transaction record (with its
/// execution log) from the coordination store by id.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PhyTask {
    /// The transaction to execute physically.
    pub id: TxnId,
}

/// Result of an administrative operation (repair/reload), persisted where
/// the requesting operator can read it.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AdminResult {
    /// Whether the operation succeeded.
    pub ok: bool,
    /// Human-readable summary.
    pub message: String,
    /// Number of corrective device actions executed (repair) or nodes
    /// replaced (reload).
    pub actions: usize,
    /// Number of drifted paths the operation observed and reconciled:
    /// cross-layer diff entries for repair, diverged nodes for reload.
    /// Absent (zero) on results written by pre-twin builds.
    #[serde(default)]
    pub drifted: usize,
}

/// Well-known paths in the coordination store.
pub mod layout {
    use tropic_model::Path;

    use crate::api::Priority;
    use crate::txn::TxnId;

    /// Root of all TROPIC state.
    pub fn root() -> Path {
        Path::parse("/tropic").expect("static path")
    }

    /// The legacy client/worker → controller queue root. Un-versioned
    /// clients still enqueue directly here; the priority lanes of
    /// [`input_lane`] nest underneath it.
    pub fn input_q() -> Path {
        Path::parse("/tropic/inputQ").expect("static path")
    }

    /// One priority lane of the input queue (`inputQ/hi|norm|batch`).
    /// The controller drains lanes strictly in priority order; the legacy
    /// un-versioned root drains at normal priority (its messages decode
    /// as `Priority::Normal`).
    pub fn input_lane(priority: Priority) -> Path {
        input_q().join(priority.lane())
    }

    /// The controller → workers queue.
    pub fn phy_q() -> Path {
        Path::parse("/tropic/phyQ").expect("static path")
    }

    /// Controller leader-election base.
    pub fn election() -> Path {
        Path::parse("/tropic/election").expect("static path")
    }

    /// Base of per-transaction records.
    pub fn txns() -> Path {
        Path::parse("/tropic/txns").expect("static path")
    }

    /// Record of one transaction.
    pub fn txn(id: TxnId) -> Path {
        txns().join(&format!("{id:020}"))
    }

    /// The logical-layer checkpoint (tree snapshot + watermark).
    pub fn checkpoint() -> Path {
        Path::parse("/tropic/checkpoint").expect("static path")
    }

    /// The persisted set of inconsistency-marked paths.
    pub fn inconsistent() -> Path {
        Path::parse("/tropic/inconsistent").expect("static path")
    }

    /// Signal znode for one transaction.
    pub fn signal(id: TxnId) -> Path {
        Path::parse("/tropic/signals")
            .expect("static path")
            .join(&format!("{id:020}"))
    }

    /// Base of administrative-operation result znodes.
    pub fn admins() -> Path {
        Path::parse("/tropic/admin").expect("static path")
    }

    /// Result znode for one administrative operation.
    pub fn admin(admin_id: u64) -> Path {
        admins().join(&format!("{admin_id:020}"))
    }

    /// Root of the digital twin's persisted state.
    pub fn twin() -> Path {
        Path::parse("/tropic/twin").expect("static path")
    }

    /// Base of persisted per-device reported state.
    pub fn twin_reported() -> Path {
        Path::parse("/tropic/twin/reported").expect("static path")
    }

    /// Reported-state znode for the device mounted at `mount`. Mount paths
    /// contain `/`, which znode names cannot, so segments are joined with
    /// `.` (model paths never contain dots).
    pub fn twin_reported_item(mount: &Path) -> Path {
        let encoded = mount.to_string().trim_start_matches('/').replace('/', ".");
        twin_reported().join(&encoded)
    }

    /// Monotonic epoch counter bumped whenever any reported-state znode
    /// changes, so the reconciler can skip re-reading an unchanged `twin/`
    /// subtree.
    pub fn twin_epoch() -> Path {
        Path::parse("/tropic/twin/epoch").expect("static path")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn submit_msg() -> InputMsg {
        InputMsg::Submit {
            id: 42,
            proc_name: "spawnVM".into(),
            args: vec![Value::from("vm1")],
            submitted_ms: 123,
            priority: Priority::High,
            deadline_ms: Some(9_000),
            idempotency_key: Some("req-1".into()),
            labels: vec![("tenant".into(), "acme".into())],
        }
    }

    #[test]
    fn input_msg_roundtrip() {
        let json = serde_json::to_vec(&submit_msg()).unwrap();
        let back: InputMsg = serde_json::from_slice(&json).unwrap();
        match back {
            InputMsg::Submit {
                id,
                proc_name,
                priority,
                deadline_ms,
                idempotency_key,
                labels,
                ..
            } => {
                assert_eq!(id, 42);
                assert_eq!(proc_name, "spawnVM");
                assert_eq!(priority, Priority::High);
                assert_eq!(deadline_ms, Some(9_000));
                assert_eq!(idempotency_key.as_deref(), Some("req-1"));
                assert_eq!(labels, vec![("tenant".to_string(), "acme".to_string())]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn envelope_roundtrip() {
        let bytes = encode_input(submit_msg());
        let back = decode_input(&bytes).unwrap();
        assert!(matches!(back, InputMsg::Submit { id: 42, .. }));
    }

    #[test]
    fn legacy_unversioned_submit_still_decodes() {
        // Bytes exactly as a pre-versioning build enqueued them: no
        // envelope, no priority/deadline/idempotency fields.
        let legacy = br#"{"Submit":{"id":7,"proc_name":"spawnVM","args":[],"submitted_ms":50}}"#;
        match decode_input(legacy).unwrap() {
            InputMsg::Submit {
                id,
                priority,
                deadline_ms,
                idempotency_key,
                labels,
                ..
            } => {
                assert_eq!(id, 7);
                assert_eq!(priority, Priority::Normal, "legacy defaults to Normal");
                assert_eq!(deadline_ms, None);
                assert_eq!(idempotency_key, None);
                assert!(labels.is_empty());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn future_wire_version_is_rejected() {
        let msg = encode_input(submit_msg());
        let bumped = String::from_utf8(msg)
            .unwrap()
            .replacen("\"v\":1", "\"v\":99", 1);
        assert!(matches!(
            decode_input(bumped.as_bytes()),
            Err(WireError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn future_version_rejected_even_with_unparseable_payload() {
        // A v2 build may carry a payload shape this build cannot parse;
        // the version must still be the reported failure.
        let bytes = br#"{"v":2,"msg":{"BrandNewVariant":{"x":1}}}"#;
        assert!(matches!(
            decode_input(bytes),
            Err(WireError::UnsupportedVersion(2))
        ));
    }

    #[test]
    fn garbage_is_malformed() {
        assert!(matches!(
            decode_input(b"not json"),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn signal_roundtrip() {
        for s in [Signal::Term, Signal::Kill] {
            let json = serde_json::to_vec(&s).unwrap();
            let back: Signal = serde_json::from_slice(&json).unwrap();
            assert_eq!(back, s);
        }
    }

    #[test]
    fn layout_paths_sort_by_id() {
        assert!(layout::txn(9) < layout::txn(10));
        assert!(layout::txn(99) < layout::txn(100));
        assert_eq!(layout::txn(5).parent().unwrap(), layout::txns());
        assert!(layout::signal(3).to_string().contains("signals"));
        assert!(layout::admin(1).to_string().contains("admin"));
    }

    #[test]
    fn twin_layout_encodes_mounts_flat() {
        let mount = Path::parse("/vmRoot/host3").unwrap();
        let znode = layout::twin_reported_item(&mount);
        assert_eq!(znode.to_string(), "/tropic/twin/reported/vmRoot.host3");
        assert_eq!(znode.parent().unwrap(), layout::twin_reported());
        assert!(layout::twin_reported()
            .to_string()
            .starts_with("/tropic/twin"));
        assert_eq!(layout::twin_epoch().parent().unwrap(), layout::twin());
        // Distinct mounts never collide.
        assert_ne!(
            layout::twin_reported_item(&Path::parse("/a/b").unwrap()),
            layout::twin_reported_item(&Path::parse("/a/c").unwrap()),
        );
    }

    #[test]
    fn admin_result_drifted_defaults_for_old_writers() {
        // A result persisted by a pre-twin build has no `drifted` field.
        let legacy = br#"{"ok":true,"message":"repaired","actions":2}"#;
        let back: AdminResult = serde_json::from_slice(legacy).unwrap();
        assert!(back.ok);
        assert_eq!(back.actions, 2);
        assert_eq!(back.drifted, 0);
    }

    #[test]
    fn lanes_nest_under_the_legacy_queue_root() {
        for p in Priority::ALL {
            let lane = layout::input_lane(p);
            assert_eq!(lane.parent().unwrap(), layout::input_q());
        }
        assert_eq!(
            layout::input_lane(Priority::High).to_string(),
            "/tropic/inputQ/hi"
        );
        assert_eq!(
            layout::input_lane(Priority::Normal).to_string(),
            "/tropic/inputQ/norm"
        );
        assert_eq!(
            layout::input_lane(Priority::Batch).to_string(),
            "/tropic/inputQ/batch"
        );
    }
}

//! Messages flowing through the durable queues and signal znodes.
//!
//! Clients and workers talk to the controller exclusively through `inputQ`
//! (paper Figure 1): clients enqueue transaction submissions, workers
//! enqueue execution results, and operators enqueue reconciliation requests.
//! The controller feeds runnable transactions to the workers through `phyQ`.

use serde::{Deserialize, Serialize};
use tropic_model::{Path, Value};

use crate::physical::PhysicalOutcome;
use crate::txn::TxnId;

/// Signals for unresponsive transactions (paper §4).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Signal {
    /// Graceful abort: the worker stops, undoes the executed prefix, and
    /// reports an abort, keeping the layers consistent.
    Term,
    /// Immediate abort in the logical layer only; the worker abandons the
    /// transaction and any cross-layer inconsistency is left to `repair`.
    Kill,
}

/// A message consumed by the (leader) controller from `inputQ`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum InputMsg {
    /// A client submitted a transaction.
    Submit {
        /// Client-assigned transaction id (ids are unique platform-wide,
        /// making re-submission after failover idempotent).
        id: TxnId,
        /// Stored-procedure name.
        proc_name: String,
        /// Procedure arguments.
        args: Vec<Value>,
        /// Submission timestamp (platform clock, ms).
        submitted_ms: u64,
    },
    /// A worker finished a transaction's physical execution.
    Result {
        /// The transaction.
        id: TxnId,
        /// How physical execution ended.
        outcome: PhysicalOutcome,
    },
    /// Operator request: reconcile physical state toward the logical layer
    /// within `scope` (paper §4, *repair*).
    Repair {
        /// Subtree to reconcile.
        scope: Path,
        /// Identifier the operator waits on for the result.
        admin_id: u64,
    },
    /// Operator request: replace the logical subtree at `scope` with freshly
    /// retrieved physical state (paper §4, *reload*).
    Reload {
        /// Subtree to reload.
        scope: Path,
        /// Identifier the operator waits on for the result.
        admin_id: u64,
    },
    /// Operator request: signal an unresponsive transaction.
    Signal {
        /// The transaction.
        id: TxnId,
        /// TERM or KILL.
        signal: Signal,
    },
}

/// A task in `phyQ`: the worker loads the full transaction record (with its
/// execution log) from the coordination store by id.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PhyTask {
    /// The transaction to execute physically.
    pub id: TxnId,
}

/// Result of an administrative operation (repair/reload), persisted where
/// the requesting operator can read it.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AdminResult {
    /// Whether the operation succeeded.
    pub ok: bool,
    /// Human-readable summary.
    pub message: String,
    /// Number of corrective device actions executed (repair) or nodes
    /// replaced (reload).
    pub actions: usize,
}

/// Well-known paths in the coordination store.
pub mod layout {
    use tropic_model::Path;

    use crate::txn::TxnId;

    /// Root of all TROPIC state.
    pub fn root() -> Path {
        Path::parse("/tropic").expect("static path")
    }

    /// The client/worker → controller queue.
    pub fn input_q() -> Path {
        Path::parse("/tropic/inputQ").expect("static path")
    }

    /// The controller → workers queue.
    pub fn phy_q() -> Path {
        Path::parse("/tropic/phyQ").expect("static path")
    }

    /// Controller leader-election base.
    pub fn election() -> Path {
        Path::parse("/tropic/election").expect("static path")
    }

    /// Base of per-transaction records.
    pub fn txns() -> Path {
        Path::parse("/tropic/txns").expect("static path")
    }

    /// Record of one transaction.
    pub fn txn(id: TxnId) -> Path {
        txns().join(&format!("{id:020}"))
    }

    /// The logical-layer checkpoint (tree snapshot + watermark).
    pub fn checkpoint() -> Path {
        Path::parse("/tropic/checkpoint").expect("static path")
    }

    /// The persisted set of inconsistency-marked paths.
    pub fn inconsistent() -> Path {
        Path::parse("/tropic/inconsistent").expect("static path")
    }

    /// Signal znode for one transaction.
    pub fn signal(id: TxnId) -> Path {
        Path::parse("/tropic/signals")
            .expect("static path")
            .join(&format!("{id:020}"))
    }

    /// Base of administrative-operation result znodes.
    pub fn admins() -> Path {
        Path::parse("/tropic/admin").expect("static path")
    }

    /// Result znode for one administrative operation.
    pub fn admin(admin_id: u64) -> Path {
        admins().join(&format!("{admin_id:020}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn input_msg_roundtrip() {
        let msg = InputMsg::Submit {
            id: 42,
            proc_name: "spawnVM".into(),
            args: vec![Value::from("vm1")],
            submitted_ms: 123,
        };
        let json = serde_json::to_vec(&msg).unwrap();
        let back: InputMsg = serde_json::from_slice(&json).unwrap();
        match back {
            InputMsg::Submit { id, proc_name, .. } => {
                assert_eq!(id, 42);
                assert_eq!(proc_name, "spawnVM");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn signal_roundtrip() {
        for s in [Signal::Term, Signal::Kill] {
            let json = serde_json::to_vec(&s).unwrap();
            let back: Signal = serde_json::from_slice(&json).unwrap();
            assert_eq!(back, s);
        }
    }

    #[test]
    fn layout_paths_sort_by_id() {
        assert!(layout::txn(9) < layout::txn(10));
        assert!(layout::txn(99) < layout::txn(100));
        assert_eq!(layout::txn(5).parent().unwrap(), layout::txns());
        assert!(layout::signal(3).to_string().contains("signals"));
        assert!(layout::admin(1).to_string().contains("admin"));
    }
}

//! Platform and service configuration.

use tropic_coord::CoordConfig;
use tropic_model::{ConstraintSet, SchemaRegistry, Tree};

use crate::actions::ActionRegistry;
use crate::proc::ProcRegistry;
use crate::reconcile::RepairRules;

/// Everything a cloud service contributes to the platform: its data-model
/// schemas and initial topology, its action and procedure definitions, its
/// safety constraints, and its repair rules. The paper's TCloud (§5) is one
/// such service; `tropic-tcloud` builds its `ServiceDefinition`.
#[derive(Clone, Default)]
pub struct ServiceDefinition {
    /// Action definitions (logical effects + undo derivations).
    pub actions: ActionRegistry,
    /// Stored procedures.
    pub procs: ProcRegistry,
    /// Safety constraints.
    pub constraints: ConstraintSet,
    /// Repair rules mapping cross-layer diffs to corrective device calls.
    pub repair_rules: RepairRules,
    /// Entity schemas validating the data model.
    pub schemas: SchemaRegistry,
    /// The initial logical tree (the provisioned topology).
    pub initial_tree: Tree,
}

/// Configuration of the network RPC frontend ([`crate::rpc`]).
#[derive(Clone, Debug)]
pub struct RpcConfig {
    /// Socket address the listener binds; port `0` picks an ephemeral port
    /// (read the real one from [`crate::rpc::RpcServer::addr`]).
    pub addr: String,
    /// Hard cap on one frame's payload bytes. A larger length prefix is
    /// rejected typed at the frame boundary and the connection closed.
    pub max_frame_bytes: u32,
    /// Upper bound on the reactor's readiness-poll timeout: the event loop
    /// wakes at least this often to re-check the shutdown flag and the
    /// observer lease even when no socket is ready.
    pub poll_ms: u64,
    /// Size of the dispatch pool the reactor hands non-blocking requests
    /// to. Each worker owns one coordination session; blocking calls
    /// (`Wait`, `Repair`, `Reload`) run on transient threads instead so
    /// they can never starve the pool. Small is right: the pool bounds
    /// *concurrency*, not connections — 10k idle connections still cost
    /// zero threads.
    pub dispatch_threads: usize,
}

impl Default for RpcConfig {
    fn default() -> Self {
        RpcConfig {
            addr: "127.0.0.1:0".into(),
            max_frame_bytes: tropic_coord::DEFAULT_MAX_FRAME_BYTES,
            poll_ms: 20,
            dispatch_threads: 4,
        }
    }
}

/// Configuration of the digital-twin reconciliation subsystem
/// ([`crate::twin`]).
#[derive(Clone, Debug)]
pub struct TwinConfig {
    /// Master switch. Off by default: the platform then behaves exactly as
    /// before — drift is only corrected by operator-triggered
    /// `repair`/`reload`.
    pub enabled: bool,
    /// How often the leading controller runs a reconciliation pass.
    pub interval_ms: u64,
    /// How often the report pump sweeps the device registry for changed
    /// reported state.
    pub report_interval_ms: u64,
    /// Base delay of the per-resource exponential backoff between repair
    /// attempts.
    pub backoff_base_ms: u64,
    /// Upper bound on the backoff delay (also the retry trickle period once
    /// a resource is `Degraded`).
    pub backoff_cap_ms: u64,
    /// Repair attempts against the same drift fingerprint before the
    /// resource escalates to `Degraded`.
    pub max_attempts: u32,
    /// Path prefixes whose corrective transactions are submitted on the
    /// high-priority lane instead of the default batch lane.
    pub critical_paths: Vec<String>,
}

impl Default for TwinConfig {
    fn default() -> Self {
        TwinConfig {
            enabled: false,
            interval_ms: 50,
            report_interval_ms: 25,
            backoff_base_ms: 100,
            backoff_cap_ms: 5_000,
            max_attempts: 5,
            critical_paths: Vec::new(),
        }
    }
}

impl TwinConfig {
    /// An enabled config with the default timing knobs.
    pub fn enabled() -> Self {
        TwinConfig {
            enabled: true,
            ..TwinConfig::default()
        }
    }
}

/// Platform-wide configuration.
#[derive(Clone, Debug)]
pub struct PlatformConfig {
    /// Number of controller replicas (the paper runs 3).
    pub controllers: usize,
    /// Number of physical workers.
    pub workers: usize,
    /// Coordination-service configuration.
    pub coord: CoordConfig,
    /// Finalized transactions between logical-layer checkpoints
    /// (0 disables checkpointing after bootstrap).
    pub checkpoint_every: u64,
    /// How long finalized transaction records linger before garbage
    /// collection, so waiting clients can still read the outcome.
    pub gc_grace_ms: u64,
    /// Send TERM to transactions running longer than this (paper §4).
    pub term_timeout_ms: Option<u64>,
    /// KILL transactions running longer than this (must exceed the TERM
    /// timeout to give graceful abort a chance).
    pub kill_timeout_ms: Option<u64>,
    /// Controller idle-wait granularity.
    pub poll_ms: u64,
    /// Group commit: the controller flushes each scheduling round's writes
    /// as one atomic coordination-store multi, and workers claim/report in
    /// batches. Disable to fall back to per-record writes (the
    /// `commit_path` bench measures both).
    pub group_commit: bool,
    /// Maximum input-queue messages the controller admits per scheduling
    /// round, spread across the priority lanes in strict `hi` → `norm` →
    /// `batch` → legacy order.
    pub input_batch: usize,
    /// Network RPC frontend settings, used by [`crate::Tropic::serve_rpc`].
    pub rpc: RpcConfig,
    /// Digital-twin reconciliation settings (disabled by default).
    pub twin: TwinConfig,
}

impl Default for PlatformConfig {
    fn default() -> Self {
        PlatformConfig {
            controllers: 3,
            workers: 1,
            coord: CoordConfig::default(),
            checkpoint_every: 256,
            gc_grace_ms: 10_000,
            term_timeout_ms: None,
            kill_timeout_ms: None,
            poll_ms: 25,
            group_commit: true,
            input_batch: 64,
            rpc: RpcConfig::default(),
            twin: TwinConfig::default(),
        }
    }
}

impl PlatformConfig {
    /// Makes the platform durable: the coordination store write-ahead-logs
    /// and snapshots under `dir`, so `Tropic::recover` with the same config
    /// resumes after a full shutdown with no acknowledged transaction lost.
    pub fn with_data_dir(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.coord.data_dir = Some(dir.into());
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_mirror_paper_deployment() {
        let cfg = PlatformConfig::default();
        assert_eq!(cfg.controllers, 3);
        assert_eq!(cfg.coord.replicas, 3);
        assert!(cfg.checkpoint_every > 0);
        assert!(cfg.term_timeout_ms.is_none());
        assert!(cfg.group_commit, "group commit is the default commit path");
    }

    #[test]
    fn with_data_dir_enables_durability() {
        let cfg = PlatformConfig::default();
        assert!(cfg.coord.data_dir.is_none(), "in-memory by default");
        let cfg = cfg.with_data_dir("/tmp/tropic-data");
        assert_eq!(
            cfg.coord.data_dir.as_deref(),
            Some(std::path::Path::new("/tmp/tropic-data"))
        );
    }

    #[test]
    fn rpc_defaults_bind_loopback_ephemeral() {
        let cfg = RpcConfig::default();
        assert_eq!(cfg.addr, "127.0.0.1:0");
        assert!(cfg.max_frame_bytes >= 1 << 20);
        assert!(cfg.poll_ms > 0);
    }

    #[test]
    fn twin_disabled_by_default() {
        let cfg = PlatformConfig::default();
        assert!(!cfg.twin.enabled, "twin must be opt-in");
        let twin = TwinConfig::enabled();
        assert!(twin.enabled);
        assert!(twin.backoff_cap_ms >= twin.backoff_base_ms);
        assert!(twin.max_attempts >= 1);
    }

    #[test]
    fn service_definition_default_is_empty() {
        let svc = ServiceDefinition::default();
        assert!(svc.actions.is_empty());
        assert!(svc.procs.is_empty());
        assert!(svc.constraints.is_empty());
        assert_eq!(svc.initial_tree.node_count(), 1);
    }
}

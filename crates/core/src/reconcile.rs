//! Reconciliation between the logical and physical layers (paper §4).
//!
//! TROPIC embraces eventual consistency between layers: `repair` pushes the
//! logical layer's view onto drifted devices, `reload` pulls device state
//! into the logical layer. This module holds the *repair planning* half —
//! rules that translate tree diffs into corrective device calls; the
//! controller executes plans and performs reloads (it owns the logical
//! tree).

use std::sync::Arc;

use tropic_devices::ActionCall;
use tropic_model::{DiffEntry, Tree};

/// A rule translating one logical-vs-physical difference into corrective
/// physical actions. Diffs are reported with `left` = logical layer,
/// `right` = physical layer; repair drives the physical layer toward
/// `left`.
pub type RepairRuleFn = dyn Fn(&DiffEntry, &Tree) -> Vec<ActionCall> + Send + Sync;

/// An ordered collection of repair rules. The first rule producing actions
/// for a diff entry wins.
#[derive(Clone, Default)]
pub struct RepairRules {
    rules: Vec<Arc<RepairRuleFn>>,
}

impl RepairRules {
    /// Creates an empty rule set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a rule.
    pub fn register(
        &mut self,
        rule: impl Fn(&DiffEntry, &Tree) -> Vec<ActionCall> + Send + Sync + 'static,
    ) {
        self.rules.push(Arc::new(rule));
    }

    /// Number of registered rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Returns `true` if no rules are registered.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Plans the corrective actions for a set of diffs against the logical
    /// tree. Unmatched diffs are returned too, so the operator can see what
    /// repair cannot fix (those need `reload` or manual intervention).
    pub fn plan(&self, diffs: &[DiffEntry], logical: &Tree) -> RepairPlan {
        let mut actions = Vec::new();
        let mut unmatched = Vec::new();
        for diff in diffs {
            let mut produced = false;
            for rule in &self.rules {
                let calls = rule(diff, logical);
                if !calls.is_empty() {
                    actions.extend(calls);
                    produced = true;
                    break;
                }
            }
            if !produced {
                unmatched.push(diff.clone());
            }
        }
        RepairPlan { actions, unmatched }
    }
}

/// The outcome of repair planning.
#[derive(Clone, Debug, Default)]
pub struct RepairPlan {
    /// Corrective device calls, in rule order.
    pub actions: Vec<ActionCall>,
    /// Diffs no rule could translate.
    pub unmatched: Vec<DiffEntry>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use tropic_model::{Node, Path, Value};

    fn logical() -> Tree {
        let mut t = Tree::new();
        t.insert(&Path::parse("/vmRoot").unwrap(), Node::new("vmRoot"))
            .unwrap();
        t.insert(&Path::parse("/vmRoot/h1").unwrap(), Node::new("vmHost"))
            .unwrap();
        t.insert(
            &Path::parse("/vmRoot/h1/vm1").unwrap(),
            Node::new("vm").with_attr("state", "running"),
        )
        .unwrap();
        t
    }

    /// The paper's §4 example: a compute server rebooted, VMs show
    /// "stopped" physically but "running" logically → repair starts them.
    fn start_vm_rule() -> RepairRules {
        let mut rules = RepairRules::new();
        rules.register(|diff, logical| {
            let DiffEntry::AttrChanged {
                path,
                attr,
                left,
                right,
            } = diff
            else {
                return Vec::new();
            };
            if attr != "state"
                || left.as_ref().and_then(Value::as_str) != Some("running")
                || right.as_ref().and_then(Value::as_str) != Some("stopped")
            {
                return Vec::new();
            }
            if logical.get(path).map(|n| n.entity()) != Some("vm") {
                return Vec::new();
            }
            let host = path.parent().expect("vm under host");
            let vm = path.leaf().expect("named").to_owned();
            vec![ActionCall::new(host, "startVM", vec![Value::from(vm)])]
        });
        rules
    }

    #[test]
    fn plan_translates_matching_diff() {
        let rules = start_vm_rule();
        let diffs = vec![DiffEntry::AttrChanged {
            path: Path::parse("/vmRoot/h1/vm1").unwrap(),
            attr: "state".into(),
            left: Some(Value::from("running")),
            right: Some(Value::from("stopped")),
        }];
        let plan = rules.plan(&diffs, &logical());
        assert_eq!(plan.actions.len(), 1);
        assert_eq!(plan.actions[0].action, "startVM");
        assert_eq!(plan.actions[0].object, Path::parse("/vmRoot/h1").unwrap());
        assert!(plan.unmatched.is_empty());
    }

    #[test]
    fn unmatched_diffs_reported() {
        let rules = start_vm_rule();
        let diffs = vec![DiffEntry::NodeRemoved {
            path: Path::parse("/vmRoot/h1/vm9").unwrap(),
            entity: "vm".into(),
        }];
        let plan = rules.plan(&diffs, &logical());
        assert!(plan.actions.is_empty());
        assert_eq!(plan.unmatched.len(), 1);
    }

    #[test]
    fn first_matching_rule_wins() {
        let mut rules = start_vm_rule();
        // A later rule that would also match never fires.
        rules.register(|_, _| vec![ActionCall::new(Path::root(), "shouldNotRun", vec![])]);
        let diffs = vec![DiffEntry::AttrChanged {
            path: Path::parse("/vmRoot/h1/vm1").unwrap(),
            attr: "state".into(),
            left: Some(Value::from("running")),
            right: Some(Value::from("stopped")),
        }];
        let plan = rules.plan(&diffs, &logical());
        assert_eq!(plan.actions.len(), 1);
        assert_eq!(plan.actions[0].action, "startVM");
    }

    #[test]
    fn empty_rules_match_nothing() {
        let rules = RepairRules::new();
        assert!(rules.is_empty());
        let diffs = vec![DiffEntry::NodeAdded {
            path: Path::root(),
            entity: "root".into(),
        }];
        let plan = rules.plan(&diffs, &logical());
        assert_eq!(plan.unmatched.len(), 1);
    }
}

//! CLI entry point for `tropic-analyze`.
//!
//! ```text
//! tropic-analyze [--root DIR] [--report FILE]   # analyze; exit 1 on findings
//! tropic-analyze --bless [--root DIR]           # record schema evolutions
//! tropic-analyze --update-allow [--root DIR]    # reseed panic budgets
//! tropic-analyze --self-test [--root DIR]       # run the fixture suite
//! ```

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

use std::path::PathBuf;
use std::process::ExitCode;

use tropic_analyze::{analyze, bless, self_test, update_allow, Options};

fn usage() -> &'static str {
    "usage: tropic-analyze [--root DIR] [--report FILE] [--fixture-registry] [--bless | --update-allow | --self-test]"
}

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut report_path: Option<PathBuf> = None;
    let mut mode_bless = false;
    let mut mode_update_allow = false;
    let mut mode_self_test = false;
    let mut fixture_registry = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(d) => root = PathBuf::from(d),
                None => {
                    eprintln!("{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--report" => match args.next() {
                Some(f) => report_path = Some(PathBuf::from(f)),
                None => {
                    eprintln!("{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--bless" => mode_bless = true,
            // Maintains the fixture trees' own lock files: analyze/bless
            // with the small self-test registry instead of the repo's.
            "--fixture-registry" => fixture_registry = true,
            "--update-allow" => mode_update_allow = true,
            "--self-test" => mode_self_test = true,
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`\n{}", usage());
                return ExitCode::from(2);
            }
        }
    }

    if mode_self_test {
        let fixtures = root.join("crates").join("analyze").join("fixtures");
        return match self_test(&fixtures) {
            Ok(msg) => {
                println!("{msg}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{e}");
                ExitCode::FAILURE
            }
        };
    }

    let opts = if fixture_registry {
        Options {
            root,
            registry: tropic_analyze::schema::Registry::fixtures(),
        }
    } else {
        Options::repo(&root)
    };

    if mode_bless {
        return match bless(&opts) {
            Ok(path) => {
                println!("blessed: wrote {}", path.display());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{e}");
                ExitCode::FAILURE
            }
        };
    }

    if mode_update_allow {
        return match update_allow(&opts) {
            Ok(path) => {
                println!("updated: wrote {}", path.display());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{e}");
                ExitCode::FAILURE
            }
        };
    }

    match analyze(&opts) {
        Ok(analysis) => {
            print!("{}", analysis.report);
            if let Some(path) = report_path {
                if let Err(e) = std::fs::write(&path, &analysis.report) {
                    eprintln!("write report {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            }
            if analysis.findings.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

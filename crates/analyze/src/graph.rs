//! Global lock-acquisition graph with cycle detection.
//!
//! Nodes are file-qualified lock ids (`crates/coord/src/service.rs::stats`);
//! an edge `A -> B` records one exemplar source site where `B` was
//! acquired while `A` was held. A strongly connected component with
//! more than one node (or a self-edge) is an inconsistent acquisition
//! order — the classic deadlock shape.

use std::collections::{BTreeMap, BTreeSet};

use crate::report::{check, Finding};

/// A source location (repo-relative path, 1-based line).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Site {
    /// Repo-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
}

impl Site {
    /// `file:line` rendering for diagnostics.
    pub fn display(&self) -> String {
        format!("{}:{}", self.file, self.line)
    }
}

/// One held-while-acquiring observation.
#[derive(Debug, Clone)]
pub struct EdgeSites {
    /// Where the already-held lock was acquired.
    pub held_at: Site,
    /// Where the second lock was acquired while the first was held.
    pub acquired_at: Site,
}

/// The global acquisition graph. Edges keep their first exemplar site
/// pair; since files are visited in sorted order and tokens in file
/// order, the exemplar choice is deterministic.
#[derive(Debug, Default)]
pub struct LockGraph {
    edges: BTreeMap<(String, String), EdgeSites>,
}

impl LockGraph {
    /// Records that `to` was acquired while `from` was held.
    pub fn add_edge(&mut self, from: &str, to: &str, sites: EdgeSites) {
        self.edges
            .entry((from.to_string(), to.to_string()))
            .or_insert(sites);
    }

    /// Number of distinct ordered edges observed.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Finds inconsistent orders: self-edges (recursive acquisition)
    /// and strongly connected components of size > 1. Each cycle is
    /// reported once, anchored at its lexicographically first edge.
    pub fn cycles(&self) -> Vec<Finding> {
        let mut findings = Vec::new();

        for ((from, to), sites) in &self.edges {
            if from == to {
                findings.push(Finding {
                    file: sites.acquired_at.file.clone(),
                    line: sites.acquired_at.line,
                    check: check::LOCK_ORDER,
                    message: format!(
                        "recursive acquisition of `{}` (already held since {})",
                        from,
                        sites.held_at.display()
                    ),
                });
            }
        }

        // Strongly connected components via iterative Tarjan.
        let nodes: Vec<&String> = {
            let mut s = BTreeSet::new();
            for (from, to) in self.edges.keys() {
                s.insert(from);
                s.insert(to);
            }
            s.into_iter().collect()
        };
        let index_of: BTreeMap<&String, usize> =
            nodes.iter().enumerate().map(|(i, n)| (*n, i)).collect();
        let mut succ: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
        for (from, to) in self.edges.keys() {
            if from != to {
                succ[index_of[from]].push(index_of[to]);
            }
        }

        let n = nodes.len();
        let mut index = vec![usize::MAX; n];
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut next_index = 0usize;
        let mut sccs: Vec<Vec<usize>> = Vec::new();

        // Explicit DFS stack: (node, next successor position).
        for start in 0..n {
            if index[start] != usize::MAX {
                continue;
            }
            let mut dfs: Vec<(usize, usize)> = vec![(start, 0)];
            while let Some(top) = dfs.last_mut() {
                let v = top.0;
                let pos = top.1;
                if pos == 0 {
                    index[v] = next_index;
                    low[v] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[v] = true;
                }
                if pos < succ[v].len() {
                    top.1 += 1;
                    let w = succ[v][pos];
                    if index[w] == usize::MAX {
                        dfs.push((w, 0));
                    } else if on_stack[w] {
                        low[v] = low[v].min(index[w]);
                    }
                } else {
                    if low[v] == index[v] {
                        let mut comp = Vec::new();
                        while let Some(w) = stack.pop() {
                            on_stack[w] = false;
                            comp.push(w);
                            if w == v {
                                break;
                            }
                        }
                        if comp.len() > 1 {
                            sccs.push(comp);
                        }
                    }
                    dfs.pop();
                    if let Some(&mut (u, _)) = dfs.last_mut() {
                        low[u] = low[u].min(low[v]);
                    }
                }
            }
        }

        for comp in sccs {
            let members: BTreeSet<usize> = comp.iter().copied().collect();
            // Internal edges of the component, sorted for determinism.
            let mut internal: Vec<(&(String, String), &EdgeSites)> = self
                .edges
                .iter()
                .filter(|((f, t), _)| {
                    f != t && members.contains(&index_of[f]) && members.contains(&index_of[t])
                })
                .collect();
            internal.sort_by_key(|(k, _)| *k);
            let Some(((first_from, first_to), anchor)) = internal.first().map(|(k, s)| {
                let (f, t) = (&k.0, &k.1);
                ((f, t), *s)
            }) else {
                continue;
            };
            let others: Vec<String> = internal
                .iter()
                .skip(1)
                .map(|((f, t), s)| format!("`{}` -> `{}` at {}", f, t, s.acquired_at.display()))
                .collect();
            findings.push(Finding {
                file: anchor.acquired_at.file.clone(),
                line: anchor.acquired_at.line,
                check: check::LOCK_ORDER,
                message: format!(
                    "inconsistent lock order: `{}` (held since {}) then `{}` here, but elsewhere {}",
                    first_from,
                    anchor.held_at.display(),
                    first_to,
                    others.join("; ")
                ),
            });
        }

        findings
    }

    /// All edge sites touching the given findings — used to honor
    /// inline allow directives at either end of a cycle.
    pub fn edges(&self) -> impl Iterator<Item = (&(String, String), &EdgeSites)> {
        self.edges.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site(f: &str, l: u32) -> Site {
        Site {
            file: f.into(),
            line: l,
        }
    }

    #[test]
    fn two_cycle_detected() {
        let mut g = LockGraph::default();
        g.add_edge(
            "a.rs::x",
            "a.rs::y",
            EdgeSites {
                held_at: site("a.rs", 1),
                acquired_at: site("a.rs", 2),
            },
        );
        g.add_edge(
            "a.rs::y",
            "a.rs::x",
            EdgeSites {
                held_at: site("a.rs", 10),
                acquired_at: site("a.rs", 11),
            },
        );
        let c = g.cycles();
        assert_eq!(c.len(), 1);
        assert!(c[0].message.contains("inconsistent lock order"));
        assert!(c[0].message.contains("a.rs:11"));
    }

    #[test]
    fn acyclic_is_clean() {
        let mut g = LockGraph::default();
        g.add_edge(
            "a.rs::x",
            "a.rs::y",
            EdgeSites {
                held_at: site("a.rs", 1),
                acquired_at: site("a.rs", 2),
            },
        );
        g.add_edge(
            "a.rs::y",
            "a.rs::z",
            EdgeSites {
                held_at: site("a.rs", 3),
                acquired_at: site("a.rs", 4),
            },
        );
        assert!(g.cycles().is_empty());
    }

    #[test]
    fn self_edge_is_recursive_acquisition() {
        let mut g = LockGraph::default();
        g.add_edge(
            "a.rs::x",
            "a.rs::x",
            EdgeSites {
                held_at: site("a.rs", 1),
                acquired_at: site("a.rs", 2),
            },
        );
        let c = g.cycles();
        assert_eq!(c.len(), 1);
        assert!(c[0].message.contains("recursive acquisition"));
    }

    #[test]
    fn three_cycle_detected_once() {
        let mut g = LockGraph::default();
        for (f, t, l) in [("x", "y", 1), ("y", "z", 3), ("z", "x", 5)] {
            g.add_edge(
                &format!("a.rs::{f}"),
                &format!("a.rs::{t}"),
                EdgeSites {
                    held_at: site("a.rs", l),
                    acquired_at: site("a.rs", l + 1),
                },
            );
        }
        let c = g.cycles();
        assert_eq!(c.len(), 1);
    }
}

//! Panic-path audit: `unwrap`/`expect`/`panic!`-family macros and
//! slice indexing in production (non-test) code.
//!
//! Sites suppressed by an inline `// analyze:allow(panic-path): …`
//! comment don't count. The remainder is compared against the per-file
//! budget in `analyze/allow.toml`: over budget fails; under budget
//! prints a non-fatal tighten notice so the numbers only burn down.

use crate::lexer::{Lexed, TokKind};
use crate::report::{check, Finding};
use crate::scope::FileScopes;

/// Macros that abort the thread.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented", "assert"];

/// One panic-capable site.
#[derive(Debug, Clone)]
pub struct PanicSite {
    /// 1-based line.
    pub line: u32,
    /// What was found (`unwrap`, `expect`, `panic!`, `index`).
    pub what: String,
}

/// Collects the unsuppressed panic sites in one file.
pub fn collect(lexed: &Lexed, scopes: &FileScopes) -> Vec<PanicSite> {
    let toks = &lexed.toks;
    let mut sites = Vec::new();
    for i in 0..toks.len() {
        if scopes.test_mask.get(i).copied().unwrap_or(false) {
            continue;
        }
        let t = &toks[i];
        let site = if t.kind == TokKind::Ident
            && (t.is_ident("unwrap") || t.is_ident("expect"))
            && i > 0
            && toks[i - 1].is_punct(".")
            && toks.get(i + 1).is_some_and(|n| n.is_punct("("))
        {
            Some(t.text.clone())
        } else if t.kind == TokKind::Ident
            && PANIC_MACROS.contains(&t.text.as_str())
            && toks.get(i + 1).is_some_and(|n| n.is_punct("!"))
        {
            Some(format!("{}!", t.text))
        } else if t.is_punct("[")
            && i > 0
            && (toks[i - 1].kind == TokKind::Ident
                || toks[i - 1].is_punct(")")
                || toks[i - 1].is_punct("]"))
        {
            // Indexing expression `expr[…]`. Pattern positions such as
            // `let [a, b] = …` have a preceding `let`/`,`/`(`, which the
            // ident/`)`/`]` requirement already excludes.
            Some("index".to_string())
        } else {
            None
        };
        if let Some(what) = site {
            let line = t.line;
            if !lexed.allowed(check::PANIC, line) {
                sites.push(PanicSite { line, what });
            }
        }
    }
    sites
}

/// Applies the budget for `file`, producing findings for every site
/// when over budget and a tighten notice (non-fatal, returned
/// separately) when under.
pub fn apply_budget(
    file: &str,
    sites: &[PanicSite],
    budget: usize,
    findings: &mut Vec<Finding>,
    notices: &mut Vec<String>,
) {
    if sites.len() > budget {
        for s in sites {
            findings.push(Finding {
                file: file.to_string(),
                line: s.line,
                check: check::PANIC,
                message: format!(
                    "`{}` in production code ({} site(s) vs budget {} in analyze/allow.toml)",
                    s.what,
                    sites.len(),
                    budget
                ),
            });
        }
    } else if sites.len() < budget {
        notices.push(format!(
            "note: {file}: panic-path budget can tighten from {budget} to {}",
            sites.len()
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::scope::analyze_scopes;

    fn sites(src: &str) -> Vec<PanicSite> {
        let l = lex(src);
        let s = analyze_scopes(&l);
        collect(&l, &s)
    }

    #[test]
    fn finds_unwrap_expect_and_macros() {
        let got = sites("fn f() { x.unwrap(); y.expect(\"m\"); panic!(\"b\"); unreachable!() }");
        let what: Vec<&str> = got.iter().map(|s| s.what.as_str()).collect();
        assert_eq!(what, vec!["unwrap", "expect", "panic!", "unreachable!"]);
    }

    #[test]
    fn indexing_counts_but_attrs_and_types_do_not() {
        let got =
            sites("#[derive(Debug)]\nstruct S { a: [u8; 4] }\nfn f(v: Vec<u8>) { let x = v[0]; }");
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].what, "index");
    }

    #[test]
    fn vec_macro_and_array_literals_skipped() {
        let got = sites("fn f() { let v = vec![1, 2]; let a = [0u8; 4]; }");
        assert!(got.is_empty());
    }

    #[test]
    fn test_code_excluded() {
        let got = sites("#[cfg(test)]\nmod t { fn g() { x.unwrap(); } }\nfn f() {}");
        assert!(got.is_empty());
    }

    #[test]
    fn inline_allow_suppresses() {
        let got = sites(
            "fn f() {\n// analyze:allow(panic-path): static data\nx.unwrap();\ny.unwrap();\n}",
        );
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].line, 4);
    }

    #[test]
    fn budget_over_under() {
        let s = sites("fn f() { a.unwrap(); b.unwrap(); }");
        let mut f = Vec::new();
        let mut n = Vec::new();
        apply_budget("x.rs", &s, 1, &mut f, &mut n);
        assert_eq!(f.len(), 2);
        f.clear();
        apply_budget("x.rs", &s, 3, &mut f, &mut n);
        assert!(f.is_empty());
        assert_eq!(n.len(), 1);
    }
}

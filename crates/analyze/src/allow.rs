//! Reader/writer for `analyze/allow.toml` — the committed per-file
//! panic-path budgets.
//!
//! The file is a single-table TOML subset:
//!
//! ```toml
//! [panic-path]
//! "crates/coord/src/wal.rs" = 3
//! ```
//!
//! Budgets are exact site counts. The analyzer fails a file that
//! exceeds its budget and prints a tighten notice when it dips below,
//! so the committed numbers can only burn down over time.

use std::collections::BTreeMap;

/// Per-file panic budgets.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Allowlist {
    /// Map from repo-relative path to allowed panic-site count.
    pub panic_budgets: BTreeMap<String, usize>,
}

impl Allowlist {
    /// Budget for `file`; files not listed get zero.
    pub fn budget(&self, file: &str) -> usize {
        self.panic_budgets.get(file).copied().unwrap_or(0)
    }

    /// Parses the TOML subset. Unknown sections are ignored so the
    /// format can grow; malformed lines are reported as errors.
    pub fn parse(text: &str) -> Result<Allowlist, String> {
        let mut out = Allowlist::default();
        let mut in_panic = false;
        for (no, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(section) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                in_panic = section.trim() == "panic-path";
                continue;
            }
            if !in_panic {
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!(
                    "allow.toml line {}: expected `\"path\" = N`",
                    no + 1
                ));
            };
            let key = key.trim().trim_matches('"').to_string();
            let value: usize = value
                .trim()
                .parse()
                .map_err(|_| format!("allow.toml line {}: bad count `{}`", no + 1, value.trim()))?;
            out.panic_budgets.insert(key, value);
        }
        Ok(out)
    }

    /// Renders the canonical file text (sorted, commented header).
    pub fn render(&self) -> String {
        let mut out = String::from(
            "# analyze/allow.toml — per-file panic-path budgets for `tropic-analyze`.\n\
             # Counts may only burn down: lower a number when you remove a site;\n\
             # never raise one without review. Regenerate with `tropic-analyze --update-allow`.\n\
             \n[panic-path]\n",
        );
        for (file, count) in &self.panic_budgets {
            out.push_str(&format!("\"{file}\" = {count}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut a = Allowlist::default();
        a.panic_budgets.insert("crates/x/src/lib.rs".into(), 4);
        a.panic_budgets.insert("src/lib.rs".into(), 1);
        let text = a.render();
        assert_eq!(Allowlist::parse(&text).unwrap(), a);
    }

    #[test]
    fn missing_file_is_zero() {
        let a = Allowlist::default();
        assert_eq!(a.budget("nope.rs"), 0);
    }

    #[test]
    fn comments_and_unknown_sections_ignored() {
        let text = "# hi\n[future-check]\n\"x\" = 9\n[panic-path]\n\"a.rs\" = 2\n";
        let a = Allowlist::parse(text).unwrap();
        assert_eq!(a.budget("a.rs"), 2);
        assert_eq!(a.budget("x"), 0);
    }

    #[test]
    fn bad_count_is_error() {
        assert!(Allowlist::parse("[panic-path]\n\"a.rs\" = lots\n").is_err());
    }
}

//! `tropic-analyze`: repo-specific static analysis for TROPIC.
//!
//! Four check families over `crates/*/src` and `src/`:
//!
//! - **lock-order** — per-function lock-acquisition sequences folded
//!   into a global graph; cycles (and recursive acquisitions) fail.
//! - **blocking-under-lock** — fsync/sleep/channel-recv/socket I/O
//!   while a parking_lot guard is live in scope.
//! - **schema-drift** — fingerprints of the registered wire/WAL types
//!   vs the committed `WIRE_SCHEMAS.lock`.
//! - **panic-path** — unwrap/expect/panic!/indexing in production code
//!   vs the per-file budgets in `analyze/allow.toml`.
//!
//! Deliberate sites are annotated inline with
//! `// analyze:allow(<check>): <reason>`. See `docs/STATIC_ANALYSIS.md`.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

pub mod allow;
pub mod graph;
pub mod lexer;
pub mod locks;
pub mod panics;
pub mod report;
pub mod schema;
pub mod scope;

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use allow::Allowlist;
use graph::LockGraph;
use locks::LockChecker;
use report::{check, sort_findings, Finding};
use schema::{Fingerprints, Registry};

/// What to analyze and against which committed state.
#[derive(Debug, Clone)]
pub struct Options {
    /// Tree root; sources are found under `src/` and `crates/*/src/`.
    pub root: PathBuf,
    /// The schema registry to fingerprint.
    pub registry: Registry,
}

impl Options {
    /// Standard options for a repo tree rooted at `root`.
    pub fn repo(root: &Path) -> Options {
        Options {
            root: root.to_path_buf(),
            registry: Registry::repo(),
        }
    }

    /// Path of the committed schema lock file.
    pub fn lock_path(&self) -> PathBuf {
        self.root.join("WIRE_SCHEMAS.lock")
    }

    /// Path of the committed panic-budget allowlist.
    pub fn allow_path(&self) -> PathBuf {
        self.root.join("analyze").join("allow.toml")
    }
}

/// The result of one analysis run.
#[derive(Debug)]
pub struct Analysis {
    /// All findings in canonical order.
    pub findings: Vec<Finding>,
    /// Non-fatal notices (budget tighten hints).
    pub notices: Vec<String>,
    /// The rendered report (findings + notices + summary).
    pub report: String,
    /// Number of source files scanned.
    pub files_scanned: usize,
    /// Current schema fingerprints (for `--bless`).
    pub fingerprints: Fingerprints,
    /// Per-file unsuppressed panic-site counts (for `--update-allow`).
    pub panic_counts: BTreeMap<String, usize>,
}

fn visit_dir(dir: &Path, root: &Path, out: &mut Vec<(String, PathBuf)>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            visit_dir(&path, root, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            out.push((rel, path));
        }
    }
}

/// Lists the production source files under `root`, sorted by relative
/// path: `src/**.rs` plus `crates/*/src/**.rs`.
pub fn collect_sources(root: &Path) -> Vec<(String, PathBuf)> {
    let mut out = Vec::new();
    visit_dir(&root.join("src"), root, &mut out);
    let crates_dir = root.join("crates");
    if let Ok(entries) = fs::read_dir(&crates_dir) {
        let mut dirs: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
        dirs.sort();
        for d in dirs {
            visit_dir(&d.join("src"), root, &mut out);
        }
    }
    out.sort();
    out
}

/// Runs all four checks over the tree. Errors are I/O or config
/// problems (unreadable allowlist), not findings.
pub fn analyze(opts: &Options) -> Result<Analysis, String> {
    let sources = collect_sources(&opts.root);
    let allowlist = match fs::read_to_string(opts.allow_path()) {
        Ok(text) => Allowlist::parse(&text)?,
        Err(_) => Allowlist::default(),
    };
    let lock_text = fs::read_to_string(opts.lock_path()).ok();

    let mut findings = Vec::new();
    let mut notices = Vec::new();
    let mut graph = LockGraph::default();
    let mut lexed_files: BTreeMap<String, lexer::Lexed> = BTreeMap::new();
    let mut panic_counts = BTreeMap::new();

    for (rel, path) in &sources {
        let src = fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        let lexed = lexer::lex(&src);
        let scopes = scope::analyze_scopes(&lexed);

        let checker = LockChecker::new(rel, &lexed);
        if checker.has_locks() {
            checker.run(&scopes, &mut graph, &mut findings);
        }

        let sites = panics::collect(&lexed, &scopes);
        if !sites.is_empty() {
            panic_counts.insert(rel.clone(), sites.len());
        }
        panics::apply_budget(
            rel,
            &sites,
            allowlist.budget(rel),
            &mut findings,
            &mut notices,
        );

        lexed_files.insert(rel.clone(), lexed);
    }

    findings.extend(graph.cycles());

    let fingerprints = schema::extract(&opts.registry, &lexed_files, &mut findings);
    schema::compare(&fingerprints, lock_text.as_deref(), &mut findings);

    sort_findings(&mut findings);
    notices.sort();
    let report = report::render(&findings, &notices, sources.len());
    Ok(Analysis {
        findings,
        notices,
        report,
        files_scanned: sources.len(),
        fingerprints,
        panic_counts,
    })
}

/// Re-fingerprints the tree and writes `WIRE_SCHEMAS.lock`, refusing
/// when any drift is an illegal evolution. Returns the lock path.
pub fn bless(opts: &Options) -> Result<PathBuf, String> {
    let analysis = analyze(opts)?;
    let lock_text = fs::read_to_string(opts.lock_path()).ok();
    let illegal = schema::illegal_drifts(&analysis.fingerprints, lock_text.as_deref());
    if !illegal.is_empty() {
        return Err(format!(
            "refusing to bless illegal schema evolution(s):\n  {}\nbump the family version or make the change additive with #[serde(default)]",
            illegal.join("\n  ")
        ));
    }
    let text = schema::render_lock(&analysis.fingerprints);
    fs::write(opts.lock_path(), text).map_err(|e| format!("write lock: {e}"))?;
    Ok(opts.lock_path())
}

/// Rewrites `analyze/allow.toml` from the tree's current unsuppressed
/// panic-site counts. Returns the allowlist path.
pub fn update_allow(opts: &Options) -> Result<PathBuf, String> {
    let analysis = analyze(opts)?;
    let mut list = Allowlist::default();
    for (file, count) in &analysis.panic_counts {
        list.panic_budgets.insert(file.clone(), *count);
    }
    let dir = opts.allow_path();
    if let Some(parent) = dir.parent() {
        fs::create_dir_all(parent).map_err(|e| format!("create {}: {e}", parent.display()))?;
    }
    fs::write(&dir, list.render()).map_err(|e| format!("write allowlist: {e}"))?;
    Ok(dir)
}

/// Runs the fixture self-test: the violations tree must fire every
/// check family; the clean tree must produce zero findings.
pub fn self_test(fixtures: &Path) -> Result<String, String> {
    let violations = Options {
        root: fixtures.join("violations"),
        registry: Registry::fixtures(),
    };
    let v = analyze(&violations)?;
    let mut missing = Vec::new();
    for id in [
        check::LOCK_ORDER,
        check::BLOCKING,
        check::SCHEMA,
        check::PANIC,
    ] {
        if !v.findings.iter().any(|f| f.check == id) {
            missing.push(id);
        }
    }
    if !missing.is_empty() {
        return Err(format!(
            "self-test: seeded violation tree did not fire: {} — findings were:\n{}",
            missing.join(", "),
            v.report
        ));
    }

    let clean = Options {
        root: fixtures.join("clean"),
        registry: Registry::fixtures(),
    };
    let c = analyze(&clean)?;
    if !c.findings.is_empty() {
        return Err(format!(
            "self-test: clean tree produced findings:\n{}",
            c.report
        ));
    }

    Ok(format!(
        "self-test OK: {} seeded finding(s) fired across all 4 checks; clean tree passed",
        v.findings.len()
    ))
}

//! Findings and deterministic report formatting.

use std::fmt;

/// Check identifiers, used in diagnostics and allow directives.
pub mod check {
    /// Inconsistent lock acquisition order (cycle in the global graph).
    pub const LOCK_ORDER: &str = "lock-order";
    /// Blocking call while a lock guard is live.
    pub const BLOCKING: &str = "blocking-under-lock";
    /// Wire/WAL schema fingerprint drift without a version bump.
    pub const SCHEMA: &str = "schema-drift";
    /// Panic-capable call in production code over the allowlisted budget.
    pub const PANIC: &str = "panic-path";
}

/// One diagnostic produced by a check.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Repo-relative path with forward slashes.
    pub file: String,
    /// 1-based line, or 0 for file-level findings.
    pub line: u32,
    /// Check id (one of [`check`]).
    pub check: &'static str,
    /// Human-readable description, including the second site for
    /// cross-site findings.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.check, self.message
        )
    }
}

/// Sorts findings into the canonical deterministic order.
pub fn sort_findings(findings: &mut [Finding]) {
    findings.sort_by(|a, b| {
        (&a.file, a.line, a.check, &a.message).cmp(&(&b.file, b.line, b.check, &b.message))
    });
}

/// Renders the full report: one line per finding, any non-fatal
/// notices, and a trailing summary line. Byte-identical across runs on
/// the same tree.
pub fn render(findings: &[Finding], notices: &[String], files_scanned: usize) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&f.to_string());
        out.push('\n');
    }
    for n in notices {
        out.push_str(n);
        out.push('\n');
    }
    out.push_str(&format!(
        "tropic-analyze: {} finding(s) across {} file(s)\n",
        findings.len(),
        files_scanned
    ));
    out
}

//! Lock-order and blocking-under-lock checks.
//!
//! Pass 1 collects the lock *names* declared in a file: struct fields,
//! statics, and locals whose type mentions `Mutex<…>` or `RwLock<…>`.
//! Lock ids are file-qualified (`crates/coord/src/service.rs::stats`)
//! so identically named fields in different modules never alias.
//!
//! Pass 2 walks each non-test function body with a small guard
//! simulator: a let-bound guard lives to the end of its enclosing
//! block, a temporary guard to the end of its statement (`match` and
//! `for` scrutinee temporaries extend through the block; `if`/`while`
//! condition temporaries die at the `{`), and `drop(g)` kills a named
//! guard early. Every acquisition made while other guards are live
//! adds edges to the global [`LockGraph`]; calls from the blocking
//! list made under a live guard are reported directly.

use std::collections::BTreeSet;

use crate::graph::{EdgeSites, LockGraph, Site};
use crate::lexer::{Lexed, Tok, TokKind};
use crate::report::{check, Finding};
use crate::scope::FileScopes;

/// Method names that block the calling thread. `wait`/`wait_timeout`
/// are deliberately absent: a condvar wait releases the guard it is
/// given, which is the correct pattern, not a bug.
const BLOCKING: &[&str] = &[
    "sync_all",
    "sync_data",
    "fsync",
    "sleep",
    "sleep_interruptible",
    "recv",
    "recv_timeout",
    "recv_deadline",
    "connect",
    "accept",
    "join",
    "write_frame",
    "read_from",
    "read_exact",
    "write_all",
];

/// Blocking names that only count with empty parentheses, to avoid
/// `Path::join`, `slice::join(sep)` and friends.
const EMPTY_ONLY: &[&str] = &["accept", "join", "recv"];

/// Collects the lock names declared in this file: any `name :` whose
/// type path reaches `Mutex<` or `RwLock<`.
pub fn collect_lock_names(lexed: &Lexed) -> BTreeSet<String> {
    let toks = &lexed.toks;
    let mut names = BTreeSet::new();
    for i in 0..toks.len() {
        let t = &toks[i];
        if !(t.is_ident("Mutex") || t.is_ident("RwLock")) {
            continue;
        }
        if !toks.get(i + 1).is_some_and(|n| n.is_punct("<")) {
            continue;
        }
        // Walk back over the type tokens to the `:` introducing it.
        let mut j = i;
        let mut found = None;
        while j > 0 {
            j -= 1;
            let b = &toks[j];
            let is_type_tok = b.kind == TokKind::Ident
                || b.kind == TokKind::Lifetime
                || b.is_punct("<")
                || b.is_punct("::")
                || b.is_punct("&");
            if is_type_tok {
                continue;
            }
            if b.is_punct(":") && j > 0 && toks[j - 1].kind == TokKind::Ident {
                found = Some(toks[j - 1].text.clone());
            }
            break;
        }
        if let Some(name) = found {
            names.insert(name);
        }
    }
    names
}

/// How long a simulated guard lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GuardKind {
    /// Let-bound: dies when its block (at this depth) closes.
    Block(usize),
    /// Temporary: dies at the end of the current statement.
    Stmt,
    /// `match`/`for` scrutinee temporary: dies when the block opened
    /// at this depth closes.
    Scrutinee(usize),
}

#[derive(Debug, Clone)]
struct Guard {
    lock_id: String,
    line: u32,
    kind: GuardKind,
    name: Option<String>,
}

/// Per-file check state shared across functions.
pub struct LockChecker<'a> {
    file: &'a str,
    lexed: &'a Lexed,
    lock_names: BTreeSet<String>,
}

impl<'a> LockChecker<'a> {
    /// Creates a checker for one file.
    pub fn new(file: &'a str, lexed: &'a Lexed) -> Self {
        let lock_names = collect_lock_names(lexed);
        LockChecker {
            file,
            lexed,
            lock_names,
        }
    }

    /// True when the file declares any locks at all.
    pub fn has_locks(&self) -> bool {
        !self.lock_names.is_empty()
    }

    fn qualify(&self, name: &str) -> String {
        format!("{}::{}", self.file, name)
    }

    /// Runs both checks over every non-test function, adding edges to
    /// `graph` and findings to `findings`.
    pub fn run(&self, scopes: &FileScopes, graph: &mut LockGraph, findings: &mut Vec<Finding>) {
        for f in &scopes.fns {
            if scopes.test_mask.get(f.body_start).copied().unwrap_or(false) {
                continue;
            }
            self.walk_fn(f.body_start, f.body_end, scopes, graph, findings);
        }
    }

    /// Is `toks[i]` the receiver of `.lock()` / `.read()` / `.write()`
    /// on a known lock? Returns the lock name when so. `i` indexes the
    /// `.` token.
    fn acquisition_at(&self, toks: &[Tok], i: usize) -> Option<String> {
        if !toks[i].is_punct(".") {
            return None;
        }
        let m = toks.get(i + 1)?;
        if !(m.is_ident("lock") || m.is_ident("read") || m.is_ident("write")) {
            return None;
        }
        // Empty parens required: `.read()` with arguments is io::Read.
        if !(toks.get(i + 2)?.is_punct("(") && toks.get(i + 3)?.is_punct(")")) {
            return None;
        }
        let recv = toks.get(i.checked_sub(1)?)?;
        if recv.kind != TokKind::Ident || !self.lock_names.contains(&recv.text) {
            return None;
        }
        Some(recv.text.clone())
    }

    fn walk_fn(
        &self,
        body_start: usize,
        body_end: usize,
        scopes: &FileScopes,
        graph: &mut LockGraph,
        findings: &mut Vec<Finding>,
    ) {
        let toks = &self.lexed.toks;
        let mut guards: Vec<Guard> = Vec::new();
        let mut depth = 1usize; // inside the body's `{`
        let mut paren = 0usize;
        // Statement tracking.
        let mut stmt_first: Option<String> = None;
        let mut saw_let = false;
        let mut let_name: Option<String> = None;

        let mut j = body_start + 1;
        while j < body_end {
            if scopes.test_mask.get(j).copied().unwrap_or(false) {
                j += 1;
                continue;
            }
            let t = &toks[j];

            // Record the first meaningful token of each statement.
            if stmt_first.is_none() && t.kind == TokKind::Ident {
                stmt_first = Some(t.text.clone());
                if t.is_ident("let") {
                    saw_let = true;
                    // First plain ident after `let` (skipping `mut`).
                    let mut k = j + 1;
                    while k < body_end
                        && (toks[k].is_ident("mut")
                            || toks[k].is_punct("(")
                            || toks[k].is_punct("&"))
                    {
                        k += 1;
                    }
                    if k < body_end && toks[k].kind == TokKind::Ident {
                        let_name = Some(toks[k].text.clone());
                    }
                }
            }

            if t.is_punct("(") {
                paren += 1;
                j += 1;
                continue;
            }
            if t.is_punct(")") {
                paren = paren.saturating_sub(1);
                j += 1;
                continue;
            }
            if t.is_punct("{") {
                let head = stmt_first.as_deref();
                let has_stmt_temps = guards.iter().any(|g| g.kind == GuardKind::Stmt);
                if has_stmt_temps {
                    match head {
                        Some("if") | Some("while") => {
                            // Condition temporaries die at the `{`.
                            guards.retain(|g| g.kind != GuardKind::Stmt);
                        }
                        Some("match") | Some("for") => {
                            // Scrutinee temporaries live through the block.
                            for g in guards.iter_mut() {
                                if g.kind == GuardKind::Stmt {
                                    g.kind = GuardKind::Scrutinee(depth + 1);
                                }
                            }
                        }
                        _ => {}
                    }
                }
                depth += 1;
                stmt_first = None;
                saw_let = false;
                let_name = None;
                j += 1;
                continue;
            }
            if t.is_punct("}") {
                guards.retain(|g| match g.kind {
                    GuardKind::Block(d) | GuardKind::Scrutinee(d) => d < depth,
                    GuardKind::Stmt => false,
                });
                depth = depth.saturating_sub(1);
                stmt_first = None;
                saw_let = false;
                let_name = None;
                j += 1;
                continue;
            }
            if (t.is_punct(";") || t.is_punct(",")) && paren == 0 {
                // `;` ends a statement; `,` at brace level ends a match
                // arm or struct-literal field — temporaries die either
                // way.
                guards.retain(|g| g.kind != GuardKind::Stmt);
                stmt_first = None;
                saw_let = false;
                let_name = None;
                j += 1;
                continue;
            }

            // drop(name) kills the named guard early.
            if t.is_ident("drop")
                && toks.get(j + 1).is_some_and(|n| n.is_punct("("))
                && toks.get(j + 3).is_some_and(|n| n.is_punct(")"))
            {
                if let Some(arg) = toks.get(j + 2) {
                    if arg.kind == TokKind::Ident {
                        guards.retain(|g| g.name.as_deref() != Some(arg.text.as_str()));
                    }
                }
            }

            // Blocking call under a live guard?
            if t.kind == TokKind::Ident
                && BLOCKING.contains(&t.text.as_str())
                && toks.get(j + 1).is_some_and(|n| n.is_punct("("))
                && j > 0
                && (toks[j - 1].is_punct(".") || toks[j - 1].is_punct("::"))
            {
                let empty = toks.get(j + 2).is_some_and(|n| n.is_punct(")"));
                let counts = empty || !EMPTY_ONLY.contains(&t.text.as_str());
                if counts {
                    if let Some(g) = guards.first() {
                        if !self.lexed.allowed(check::BLOCKING, t.line) {
                            findings.push(Finding {
                                file: self.file.to_string(),
                                line: t.line,
                                check: check::BLOCKING,
                                message: format!(
                                    "blocking call `{}` while holding `{}` (acquired at line {})",
                                    t.text, g.lock_id, g.line
                                ),
                            });
                        }
                    }
                }
            }

            // Lock acquisition?
            if let Some(name) = self.acquisition_at(toks, j) {
                let lock_id = self.qualify(&name);
                let line = toks[j + 1].line;
                let allowed_here = self.lexed.allowed(check::LOCK_ORDER, line);
                for g in &guards {
                    if allowed_here {
                        continue;
                    }
                    graph.add_edge(
                        &g.lock_id,
                        &lock_id,
                        EdgeSites {
                            held_at: Site {
                                file: self.file.to_string(),
                                line: g.line,
                            },
                            acquired_at: Site {
                                file: self.file.to_string(),
                                line,
                            },
                        },
                    );
                }
                // Let-bound iff the guard itself is the bound value:
                // `let g = x.lock();` — the token after `()` ends the
                // statement. A chained `let n = x.lock().len();` is a
                // temporary.
                let after = toks.get(j + 4);
                let kind = if saw_let && after.is_some_and(|a| a.is_punct(";")) {
                    GuardKind::Block(depth)
                } else {
                    GuardKind::Stmt
                };
                guards.push(Guard {
                    lock_id,
                    line,
                    kind,
                    name: if kind == GuardKind::Stmt {
                        None
                    } else {
                        let_name.clone()
                    },
                });
                j += 4; // past `. lock ( )`
                continue;
            }

            j += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::scope::analyze_scopes;

    fn run_src(src: &str) -> (LockGraph, Vec<Finding>) {
        let l = lex(src);
        let s = analyze_scopes(&l);
        let c = LockChecker::new("t.rs", &l);
        let mut g = LockGraph::default();
        let mut f = Vec::new();
        c.run(&s, &mut g, &mut f);
        (g, f)
    }

    const DECLS: &str = "struct S { a: Mutex<u32>, b: Mutex<u32>, st: Mutex<u32> }\n";

    #[test]
    fn collects_field_static_and_arc_locks() {
        let l = lex(
            "struct S { a: Mutex<u32>, b: Arc<RwLock<V>>, c: parking_lot::Mutex<X> }\n\
             static G: Mutex<u8> = Mutex::new(0);\nfn f(p: &Mutex<u64>) {}",
        );
        let names = collect_lock_names(&l);
        for n in ["a", "b", "c", "G", "p"] {
            assert!(names.contains(n), "missing {n}");
        }
    }

    #[test]
    fn let_guard_spans_block_and_orders_edges() {
        let src =
            format!("{DECLS}fn f(s: &S) {{ let g = s.a.lock(); let h = s.b.lock(); *h += *g; }}");
        let (g, f) = run_src(&src);
        assert_eq!(g.edge_count(), 1);
        assert!(f.is_empty());
        assert!(g.cycles().is_empty());
    }

    #[test]
    fn opposite_orders_form_cycle() {
        let src = format!(
            "{DECLS}fn f(s: &S) {{ let g = s.a.lock(); let h = s.b.lock(); }}\n\
             fn r(s: &S) {{ let g = s.b.lock(); let h = s.a.lock(); }}"
        );
        let (g, _) = run_src(&src);
        assert_eq!(g.cycles().len(), 1);
    }

    #[test]
    fn temp_guard_dies_at_statement_end() {
        let src = format!(
            "{DECLS}fn f(s: &S) {{ let n = s.a.lock().clone(); let h = s.b.lock(); }}\n\
             fn r(s: &S) {{ let n = s.b.lock().clone(); let h = s.a.lock(); }}"
        );
        let (g, _) = run_src(&src);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn if_condition_temp_dies_at_brace() {
        let src = format!(
            "{DECLS}fn f(s: &S) {{ if s.a.lock().eq(&0) {{ let h = s.b.lock(); }} }}\n\
             fn r(s: &S) {{ if s.b.lock().eq(&0) {{ let h = s.a.lock(); }} }}"
        );
        let (g, _) = run_src(&src);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn match_scrutinee_temp_lives_through_block() {
        let src = format!(
            "{DECLS}fn f(s: &S) {{ match s.a.lock().checked_add(1) {{ Some(_) => {{ let h = s.b.lock(); }} None => {{}} }} }}"
        );
        let (g, _) = run_src(&src);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn drop_kills_guard() {
        let src =
            format!("{DECLS}fn f(s: &S) {{ let g = s.a.lock(); drop(g); let h = s.b.lock(); }}");
        let (g, _) = run_src(&src);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn blocking_under_guard_flagged_and_allow_suppresses() {
        let src = format!(
            "{DECLS}fn f(s: &S) {{ let g = s.a.lock(); std::thread::sleep(d); }}\n\
             fn ok(s: &S) {{ let g = s.a.lock();\n\
             // analyze:allow(blocking-under-lock): deliberate\n\
             std::thread::sleep(d); }}"
        );
        let (_, f) = run_src(&src);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("sleep"));
        assert!(f[0].message.contains("t.rs::a"));
    }

    #[test]
    fn blocking_after_scope_close_not_flagged() {
        let src =
            format!("{DECLS}fn f(s: &S) {{ {{ let g = s.a.lock(); }} std::thread::sleep(d); }}");
        let (_, f) = run_src(&src);
        assert!(f.is_empty());
    }

    #[test]
    fn path_join_not_blocking() {
        let src = format!("{DECLS}fn f(s: &S) {{ let g = s.a.lock(); p.join(\"x\"); }}");
        let (_, f) = run_src(&src);
        assert!(f.is_empty());
    }

    #[test]
    fn io_read_with_args_is_not_acquisition() {
        let src =
            format!("{DECLS}fn f(s: &S, r: &mut R) {{ r.read(&mut buf); let g = s.a.lock(); }}");
        let (g, f) = run_src(&src);
        assert!(f.is_empty());
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn recursive_acquisition_flagged() {
        let src = format!("{DECLS}fn f(s: &S) {{ let g = s.a.lock(); let h = s.a.lock(); }}");
        let (g, _) = run_src(&src);
        let c = g.cycles();
        assert_eq!(c.len(), 1);
        assert!(c[0].message.contains("recursive"));
    }

    #[test]
    fn closure_inside_guarded_scope_still_tracks() {
        // A blocking call in a closure defined while the guard is held
        // is still flagged: the closure may well run before the guard
        // drops (e.g. iterator adapters evaluated eagerly).
        let src = format!(
            "{DECLS}fn f(s: &S) {{ let g = s.a.lock(); items.iter().for_each(|x| {{ ch.recv(); }}); }}"
        );
        let (_, f) = run_src(&src);
        assert_eq!(f.len(), 1);
    }
}

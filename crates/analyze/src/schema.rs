//! Wire/WAL schema fingerprinting against a committed
//! `WIRE_SCHEMAS.lock`.
//!
//! A registry names the types and constants that define the repo's
//! three serialized formats. For each, the analyzer extracts a
//! normalized fingerprint — field/variant lines with their serde
//! attributes, or a constant's value — and compares it to the lock
//! file. Any mismatch fails the check; the diagnostic says whether the
//! change is a *legal* evolution (record it with `--bless`) or an
//! illegal one (bump the format version or add `#[serde(default)]`).
//!
//! Families and their evolution policies:
//! - `wire` (JSON envelopes): additive changes are legal when every
//!   added field carries `#[serde(default)]` (new enum variants are
//!   additive too); anything else requires a `WIRE_VERSION` bump.
//! - `wal` (binary log records): any drift requires a `FORMAT_VERSION`
//!   bump — there is no additive escape hatch for a positional codec.
//! - `snapshot` (snapshot/delta headers): the magic constants *are*
//!   the version, so a change is self-anchoring but must still be
//!   blessed so the lock-file diff is visible in review.

use std::collections::BTreeMap;

use crate::lexer::{Lexed, TokKind};
use crate::report::{check, Finding};
use crate::scope::matching_brace;

/// Which serialized format an entry belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// Versioned JSON envelope types (anchor: `WIRE_VERSION`).
    Wire,
    /// Binary WAL record codec (anchor: `FORMAT_VERSION`).
    Wal,
    /// Snapshot/delta file headers (self-anchored magic constants).
    Snapshot,
}

impl Family {
    fn as_str(self) -> &'static str {
        match self {
            Family::Wire => "wire",
            Family::Wal => "wal",
            Family::Snapshot => "snapshot",
        }
    }
}

/// What kind of registry entry this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryKind {
    /// A struct or enum whose fields/variants are fingerprinted.
    Type,
    /// A constant whose value is fingerprinted.
    Const,
    /// The family's version constant; its value gates evolutions.
    Anchor,
}

impl EntryKind {
    fn as_str(self) -> &'static str {
        match self {
            EntryKind::Type => "type",
            EntryKind::Const => "const",
            EntryKind::Anchor => "anchor",
        }
    }
}

/// One registered schema element.
#[derive(Debug, Clone)]
pub struct Entry {
    /// Format family.
    pub family: Family,
    /// Repo-relative file (forward slashes).
    pub file: String,
    /// Entry kind.
    pub kind: EntryKind,
    /// Type or constant name.
    pub name: String,
}

impl Entry {
    fn key(&self) -> String {
        format!(
            "{} {} {}::{}",
            self.kind.as_str(),
            self.family.as_str(),
            self.file,
            self.name
        )
    }
}

/// The set of registered schema elements.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    /// All entries, in registration order.
    pub entries: Vec<Entry>,
}

fn e(family: Family, file: &str, kind: EntryKind, name: &str) -> Entry {
    Entry {
        family,
        file: file.to_string(),
        kind,
        name: name.to_string(),
    }
}

impl Registry {
    /// The repo's registry: every type and constant that participates
    /// in a serialized format.
    pub fn repo() -> Registry {
        use EntryKind::{Anchor, Const, Type};
        use Family::{Snapshot, Wal, Wire};
        let msg = "crates/core/src/msg.rs";
        let rpc = "crates/core/src/rpc.rs";
        let api = "crates/core/src/api.rs";
        let txn = "crates/core/src/txn.rs";
        let twin = "crates/core/src/twin.rs";
        let report = "crates/devices/src/report.rs";
        let wal = "crates/coord/src/wal.rs";
        let store = "crates/coord/src/store.rs";
        let snap = "crates/coord/src/snapshot.rs";
        let mut entries = vec![e(Wire, msg, Anchor, "WIRE_VERSION")];
        for name in [
            "Envelope",
            "InputMsg",
            "PhyTask",
            "AdminResult",
            "WireError",
        ] {
            entries.push(e(Wire, msg, Type, name));
        }
        for name in ["RpcRequest", "RpcResponse"] {
            entries.push(e(Wire, rpc, Type, name));
        }
        for name in ["TxnRequest", "ApiError"] {
            entries.push(e(Wire, api, Type, name));
        }
        for name in ["LogRecord", "TxnRecord"] {
            entries.push(e(Wire, txn, Type, name));
        }
        entries.push(e(Wire, twin, Type, "TwinEvent"));
        entries.push(e(Wire, report, Type, "StateReport"));
        entries.push(e(Wal, wal, Anchor, "FORMAT_VERSION"));
        entries.push(e(Wal, store, Type, "Op"));
        for name in [
            "TAG_CREATE",
            "TAG_SET",
            "TAG_DELETE",
            "TAG_PURGE",
            "TAG_MULTI",
        ] {
            entries.push(e(Wal, wal, Const, name));
        }
        for name in ["MAGIC", "DELTA_MAGIC", "TAG_PUT", "TAG_TOMBSTONE"] {
            entries.push(e(Snapshot, snap, Const, name));
        }
        Registry { entries }
    }

    /// The fixture registry used by `--self-test` and the integration
    /// tests; mirrors the repo registry's shape over the fixture tree.
    pub fn fixtures() -> Registry {
        use EntryKind::{Anchor, Type};
        use Family::Wire;
        let wire = "src/wire.rs";
        Registry {
            entries: vec![
                e(Wire, wire, Anchor, "WIRE_VERSION"),
                e(Wire, wire, Type, "Envelope"),
                e(Wire, wire, Type, "InputMsg"),
            ],
        }
    }
}

/// The extracted fingerprint of one entry: a header key plus detail
/// lines (field/variant lines for types, a single value line for
/// consts and anchors).
pub type Fingerprints = BTreeMap<String, Vec<String>>;

fn render_toks(lexed: &Lexed, from: usize, to: usize) -> String {
    lexed.toks[from..to]
        .iter()
        .map(|t| t.text.as_str())
        .collect::<Vec<_>>()
        .join(" ")
}

/// Collects serde attributes *before* token index `i`, scanning back
/// over `#[…]` groups and doc attributes. Returns rendered serde attr
/// bodies in source order.
fn serde_attrs_before(lexed: &Lexed, mut i: usize) -> Vec<String> {
    let toks = &lexed.toks;
    let mut attrs = Vec::new();
    loop {
        // Expect … `]` scanning backwards for the matching `[` with `#`.
        if i == 0 || !toks[i - 1].is_punct("]") {
            break;
        }
        let close = i - 1;
        let mut depth = 0usize;
        let mut open = None;
        let mut k = close;
        loop {
            if toks[k].is_punct("]") {
                depth += 1;
            } else if toks[k].is_punct("[") {
                depth -= 1;
                if depth == 0 {
                    open = Some(k);
                    break;
                }
            }
            if k == 0 {
                break;
            }
            k -= 1;
        }
        let Some(open) = open else { break };
        if open == 0 || !toks[open - 1].is_punct("#") {
            break;
        }
        if toks[open + 1].is_ident("serde") {
            attrs.push(render_toks(lexed, open + 1, close));
        }
        i = open - 1;
    }
    attrs.reverse();
    attrs
}

/// Extracts the fingerprint lines for a struct/enum named `name`.
fn extract_type(lexed: &Lexed, name: &str) -> Option<Vec<String>> {
    let toks = &lexed.toks;
    let mut at = None;
    for i in 0..toks.len().saturating_sub(1) {
        if (toks[i].is_ident("struct") || toks[i].is_ident("enum")) && toks[i + 1].is_ident(name) {
            at = Some(i);
            break;
        }
    }
    let i = at?;
    let is_enum = toks[i].is_ident("enum");
    let mut lines = Vec::new();
    for a in serde_attrs_before(lexed, i) {
        lines.push(format!("attr {a}"));
    }
    // Find the body `{`, a tuple `(`, or a unit `;`.
    let mut j = i + 2;
    while j < toks.len() {
        if toks[j].is_punct("{") {
            break;
        }
        if toks[j].is_punct("(") {
            // Tuple struct: fingerprint the whole payload.
            let mut depth = 0usize;
            let start = j;
            while j < toks.len() {
                if toks[j].is_punct("(") {
                    depth += 1;
                } else if toks[j].is_punct(")") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j += 1;
            }
            lines.push(format!("tuple {}", render_toks(lexed, start, j + 1)));
            return Some(lines);
        }
        if toks[j].is_punct(";") {
            lines.push("unit".to_string());
            return Some(lines);
        }
        j += 1;
    }
    if j >= toks.len() {
        return None;
    }
    let body_end = matching_brace(toks, j);
    let mut k = j + 1;
    while k < body_end {
        // Attributes on the field/variant.
        let mut serde_attrs = Vec::new();
        while k < body_end && toks[k].is_punct("#") {
            let mut depth = 0usize;
            let open = k + 1;
            let mut close = open;
            while close < body_end {
                if toks[close].is_punct("[") {
                    depth += 1;
                } else if toks[close].is_punct("]") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                close += 1;
            }
            if toks[open + 1].is_ident("serde") {
                serde_attrs.push(render_toks(lexed, open + 1, close));
            }
            k = close + 1;
        }
        // Visibility.
        while k < body_end
            && (toks[k].is_ident("pub") || toks[k].is_punct("(") || toks[k].is_ident("crate"))
        {
            if toks[k].is_punct("(") {
                // pub(crate) group
                while k < body_end && !toks[k].is_punct(")") {
                    k += 1;
                }
            }
            k += 1;
        }
        if k >= body_end {
            break;
        }
        if toks[k].kind != TokKind::Ident {
            k += 1;
            continue;
        }
        let item_name = toks[k].text.clone();
        k += 1;
        if is_enum {
            // Optional payload: ( … ), { … } or = expr.
            let mut payload = String::new();
            if k < body_end && toks[k].is_punct("(") {
                let start = k;
                let mut depth = 0usize;
                while k < body_end {
                    if toks[k].is_punct("(") {
                        depth += 1;
                    } else if toks[k].is_punct(")") {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    k += 1;
                }
                payload = render_toks(lexed, start, (k + 1).min(body_end));
                k += 1;
            } else if k < body_end && toks[k].is_punct("{") {
                let end = matching_brace(toks, k);
                payload = render_toks(lexed, k, (end + 1).min(body_end + 1));
                k = end + 1;
            } else if k < body_end && toks[k].is_punct("=") {
                let start = k;
                while k < body_end && !toks[k].is_punct(",") {
                    k += 1;
                }
                payload = render_toks(lexed, start, k);
            }
            let serde = if serde_attrs.is_empty() {
                String::new()
            } else {
                format!(" [{}]", serde_attrs.join("; "))
            };
            if payload.is_empty() {
                lines.push(format!("variant {item_name}{serde}"));
            } else {
                lines.push(format!("variant {item_name} {payload}{serde}"));
            }
            // Skip to the `,` separating variants.
            while k < body_end && !toks[k].is_punct(",") {
                k += 1;
            }
            k += 1;
        } else {
            // Struct field: `name : type` up to a top-level `,`.
            if k >= body_end || !toks[k].is_punct(":") {
                continue;
            }
            k += 1;
            let start = k;
            let mut angle = 0i32;
            let mut group = 0i32;
            while k < body_end {
                let t = &toks[k];
                if t.is_punct("<") {
                    angle += 1;
                } else if t.is_punct(">") {
                    angle -= 1;
                } else if t.is_punct("(") || t.is_punct("[") {
                    group += 1;
                } else if t.is_punct(")") || t.is_punct("]") {
                    group -= 1;
                } else if t.is_punct(",") && angle <= 0 && group <= 0 {
                    break;
                }
                k += 1;
            }
            let ty = render_toks(lexed, start, k);
            let serde = if serde_attrs.is_empty() {
                String::new()
            } else {
                format!(" [{}]", serde_attrs.join("; "))
            };
            lines.push(format!("field {item_name} : {ty}{serde}"));
            k += 1;
        }
    }
    Some(lines)
}

/// Extracts a constant's value tokens: `const NAME : T = <value> ;`.
fn extract_const(lexed: &Lexed, name: &str) -> Option<Vec<String>> {
    let toks = &lexed.toks;
    for i in 0..toks.len().saturating_sub(2) {
        if !(toks[i].is_ident("const") && toks[i + 1].is_ident(name)) {
            continue;
        }
        let mut j = i + 2;
        while j < toks.len() && !toks[j].is_punct("=") {
            j += 1;
        }
        let start = j + 1;
        let mut k = start;
        while k < toks.len() && !toks[k].is_punct(";") {
            k += 1;
        }
        return Some(vec![format!("= {}", render_toks(lexed, start, k))]);
    }
    None
}

/// Extracts the fingerprints of all registry entries from the lexed
/// sources (`files` maps repo-relative path to its lexed tokens).
/// Missing entries produce a finding.
pub fn extract(
    registry: &Registry,
    files: &BTreeMap<String, Lexed>,
    findings: &mut Vec<Finding>,
) -> Fingerprints {
    let mut out = Fingerprints::new();
    for entry in &registry.entries {
        let Some(lexed) = files.get(&entry.file) else {
            findings.push(Finding {
                file: entry.file.clone(),
                line: 0,
                check: check::SCHEMA,
                message: format!("registered schema file not found (wanted {})", entry.key()),
            });
            continue;
        };
        let lines = match entry.kind {
            EntryKind::Type => extract_type(lexed, &entry.name),
            EntryKind::Const | EntryKind::Anchor => extract_const(lexed, &entry.name),
        };
        match lines {
            Some(lines) => {
                out.insert(entry.key(), lines);
            }
            None => findings.push(Finding {
                file: entry.file.clone(),
                line: 0,
                check: check::SCHEMA,
                message: format!("registered schema element `{}` not found", entry.key()),
            }),
        }
    }
    out
}

/// Serializes fingerprints into the lock-file text.
pub fn render_lock(fp: &Fingerprints) -> String {
    let mut out = String::from(
        "# WIRE_SCHEMAS.lock — generated by `tropic-analyze --bless`; do not edit by hand.\n\
         # Each entry fingerprints a serialized type or constant; see docs/STATIC_ANALYSIS.md.\n",
    );
    for (key, lines) in fp {
        out.push_str(key);
        out.push('\n');
        for l in lines {
            out.push_str("  ");
            out.push_str(l);
            out.push('\n');
        }
    }
    out
}

/// Parses the lock-file text back into fingerprints.
pub fn parse_lock(text: &str) -> Fingerprints {
    let mut out = Fingerprints::new();
    let mut current: Option<String> = None;
    for line in text.lines() {
        if line.starts_with('#') || line.trim().is_empty() {
            continue;
        }
        if let Some(detail) = line.strip_prefix("  ") {
            if let Some(lines) = current.as_ref().and_then(|key| out.get_mut(key)) {
                lines.push(detail.to_string());
            }
            continue;
        }
        out.insert(line.to_string(), Vec::new());
        current = Some(line.to_string());
    }
    out
}

fn anchor_key_of(fp: &Fingerprints, family: &str) -> Option<String> {
    fp.keys()
        .find(|k| k.starts_with(&format!("anchor {family} ")))
        .cloned()
}

fn anchor_bumped(current: &Fingerprints, locked: &Fingerprints, family: &str) -> bool {
    let Some(key) = anchor_key_of(current, family) else {
        return false;
    };
    match (current.get(&key), locked.get(&key)) {
        (Some(now), Some(then)) => now != then,
        (Some(_), None) => true,
        _ => false,
    }
}

/// True when `now` is an additive evolution of `then`: every old line
/// survives verbatim (in order), and every inserted line is either a
/// `field … [serde ( default )…]` or a new `variant`.
fn is_additive(then: &[String], now: &[String]) -> bool {
    let mut ti = 0usize;
    for line in now {
        if ti < then.len() && *line == then[ti] {
            ti += 1;
            continue;
        }
        let added_ok =
            (line.starts_with("field ") && line.contains("serde ( default") && line.contains('['))
                || line.starts_with("variant ");
        if !added_ok {
            return false;
        }
    }
    ti == then.len()
}

/// Compares current fingerprints to the lock file, appending findings.
/// `lock_text` is `None` when the lock file does not exist yet.
pub fn compare(current: &Fingerprints, lock_text: Option<&str>, findings: &mut Vec<Finding>) {
    let Some(lock_text) = lock_text else {
        findings.push(Finding {
            file: "WIRE_SCHEMAS.lock".to_string(),
            line: 0,
            check: check::SCHEMA,
            message: "lock file missing; run `tropic-analyze --bless` to create it".to_string(),
        });
        return;
    };
    let locked = parse_lock(lock_text);

    for (key, now) in current {
        let family = key.split(' ').nth(1).unwrap_or("");
        let file = key
            .split(' ')
            .nth(2)
            .and_then(|p| p.split("::").next())
            .unwrap_or("WIRE_SCHEMAS.lock")
            .to_string();
        match locked.get(key) {
            None => findings.push(Finding {
                file,
                line: 0,
                check: check::SCHEMA,
                message: format!(
                    "`{key}` is not in WIRE_SCHEMAS.lock; run `tropic-analyze --bless`"
                ),
            }),
            Some(then) if then == now => {}
            Some(then) => {
                let bumped = anchor_bumped(current, &locked, family);
                let legal = match family {
                    "wire" => bumped || is_additive(then, now),
                    "wal" => bumped,
                    // Snapshot magic constants are self-anchoring.
                    "snapshot" => true,
                    _ => false,
                };
                let msg = if key.starts_with("anchor ") {
                    format!(
                        "`{key}` changed from `{}` to `{}`; run `tropic-analyze --bless` to record the new format version",
                        then.join(" "),
                        now.join(" ")
                    )
                } else if legal {
                    format!(
                        "`{key}` drifted from WIRE_SCHEMAS.lock (legal evolution); run `tropic-analyze --bless` to record it"
                    )
                } else if family == "wire" {
                    format!(
                        "`{key}` drifted without a WIRE_VERSION bump; add #[serde(default)] to new fields or bump WIRE_VERSION, then run `tropic-analyze --bless`"
                    )
                } else {
                    format!(
                        "`{key}` drifted without a FORMAT_VERSION bump; bump the codec version, then run `tropic-analyze --bless`"
                    )
                };
                findings.push(Finding {
                    file,
                    line: 0,
                    check: check::SCHEMA,
                    message: msg,
                });
            }
        }
    }
    for key in locked.keys() {
        if !current.contains_key(key) {
            findings.push(Finding {
                file: "WIRE_SCHEMAS.lock".to_string(),
                line: 0,
                check: check::SCHEMA,
                message: format!(
                    "stale lock entry `{key}` (no longer registered/extracted); run `tropic-analyze --bless`"
                ),
            });
        }
    }
}

/// Verifies that every drift is a legal evolution; returns the list of
/// illegal drifts (empty means `--bless` may proceed).
pub fn illegal_drifts(current: &Fingerprints, lock_text: Option<&str>) -> Vec<String> {
    let Some(lock_text) = lock_text else {
        return Vec::new(); // first bless: everything is legal
    };
    let locked = parse_lock(lock_text);
    let mut illegal = Vec::new();
    for (key, now) in current {
        let family = key.split(' ').nth(1).unwrap_or("");
        if let Some(then) = locked.get(key) {
            if then == now {
                continue;
            }
            let bumped = anchor_bumped(current, &locked, family);
            let legal = key.starts_with("anchor ")
                || match family {
                    "wire" => bumped || is_additive(then, now),
                    "wal" => bumped,
                    "snapshot" => true,
                    _ => false,
                };
            if !legal {
                illegal.push(key.clone());
            }
        }
    }
    illegal
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn fp_of(src: &str, file: &str, reg: &Registry) -> (Fingerprints, Vec<Finding>) {
        let mut files = BTreeMap::new();
        files.insert(file.to_string(), lex(src));
        let mut findings = Vec::new();
        let fp = extract(reg, &files, &mut findings);
        (fp, findings)
    }

    fn wire_reg() -> Registry {
        Registry {
            entries: vec![
                e(Family::Wire, "m.rs", EntryKind::Anchor, "WIRE_VERSION"),
                e(Family::Wire, "m.rs", EntryKind::Type, "Envelope"),
            ],
        }
    }

    const BASE: &str = "pub const WIRE_VERSION: u32 = 1;\n\
        pub struct Envelope { pub v: u32, pub msg: InputMsg }";

    #[test]
    fn roundtrip_lock_format() {
        let (fp, f) = fp_of(BASE, "m.rs", &wire_reg());
        assert!(f.is_empty());
        let text = render_lock(&fp);
        assert_eq!(parse_lock(&text), fp);
    }

    #[test]
    fn unchanged_tree_is_clean() {
        let (fp, _) = fp_of(BASE, "m.rs", &wire_reg());
        let lock = render_lock(&fp);
        let mut f = Vec::new();
        compare(&fp, Some(&lock), &mut f);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn field_change_without_bump_is_illegal() {
        let (old, _) = fp_of(BASE, "m.rs", &wire_reg());
        let lock = render_lock(&old);
        let changed = BASE.replace("pub v: u32", "pub v: u64");
        let (now, _) = fp_of(&changed, "m.rs", &wire_reg());
        let mut f = Vec::new();
        compare(&now, Some(&lock), &mut f);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("without a WIRE_VERSION bump"));
        assert!(!illegal_drifts(&now, Some(&lock)).is_empty());
    }

    #[test]
    fn added_defaulted_field_is_legal_but_needs_bless() {
        let (old, _) = fp_of(BASE, "m.rs", &wire_reg());
        let lock = render_lock(&old);
        let changed = BASE.replace(
            "pub msg: InputMsg }",
            "pub msg: InputMsg, #[serde(default)] pub trace: Option<u64> }",
        );
        let (now, _) = fp_of(&changed, "m.rs", &wire_reg());
        let mut f = Vec::new();
        compare(&now, Some(&lock), &mut f);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("legal evolution"), "{}", f[0].message);
        assert!(illegal_drifts(&now, Some(&lock)).is_empty());
    }

    #[test]
    fn bumped_anchor_makes_field_change_legal() {
        let (old, _) = fp_of(BASE, "m.rs", &wire_reg());
        let lock = render_lock(&old);
        let changed = BASE
            .replace("pub v: u32", "pub v: u64")
            .replace("WIRE_VERSION: u32 = 1", "WIRE_VERSION: u32 = 2");
        let (now, _) = fp_of(&changed, "m.rs", &wire_reg());
        assert!(illegal_drifts(&now, Some(&lock)).is_empty());
        let mut f = Vec::new();
        compare(&now, Some(&lock), &mut f);
        // Still findings (lock must be re-blessed), but marked legal.
        assert!(f.iter().all(|x| x.message.contains("bless")));
    }

    #[test]
    fn enum_variants_fingerprint() {
        let reg = Registry {
            entries: vec![e(Family::Wal, "w.rs", EntryKind::Type, "Op")],
        };
        let (fp, f) = fp_of(
            "pub enum Op { Create { path: Path, data: Bytes }, Delete(Path), Noop }",
            "w.rs",
            &reg,
        );
        assert!(f.is_empty());
        let lines = fp.values().next().expect("one entry");
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("variant Create {"));
        assert!(lines[1].starts_with("variant Delete ("));
        assert_eq!(lines[2], "variant Noop");
    }

    #[test]
    fn missing_type_reported() {
        let reg = Registry {
            entries: vec![e(Family::Wire, "m.rs", EntryKind::Type, "Ghost")],
        };
        let (_, f) = fp_of("pub struct Real;", "m.rs", &reg);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("not found"));
    }

    #[test]
    fn missing_lock_file_reported() {
        let (fp, _) = fp_of(BASE, "m.rs", &wire_reg());
        let mut f = Vec::new();
        compare(&fp, None, &mut f);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("lock file missing"));
    }
}

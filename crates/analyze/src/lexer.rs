//! A small hand-rolled Rust lexer.
//!
//! Produces a flat token stream with line numbers, plus the
//! `// analyze:allow(<check>): <reason>` directives found in comments.
//! It understands just enough of the language for the checks built on
//! top of it: raw/byte strings, nested block comments, char literals
//! vs. lifetimes, raw identifiers, and multi-char punctuation that
//! matters for path and signature parsing (`::`, `->`, `=>`).

/// Kind of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including `r#raw` identifiers, stripped).
    Ident,
    /// A lifetime such as `'a` or `'static` (text keeps the quote).
    Lifetime,
    /// String literal of any flavor (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Character or byte literal (`'x'`, `b'\n'`).
    Char,
    /// Numeric literal.
    Num,
    /// Punctuation. Multi-char tokens emitted: `::`, `->`, `=>`, `..`,
    /// `..=`, `...`; everything else is a single character.
    Punct,
}

/// One token with its source line (1-based).
#[derive(Debug, Clone)]
pub struct Tok {
    /// What kind of token this is.
    pub kind: TokKind,
    /// The token text. String/char literals keep their quotes.
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: u32,
}

impl Tok {
    /// True when the token is an identifier with exactly this text.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True when the token is punctuation with exactly this text.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }
}

/// An inline `// analyze:allow(<check>): <reason>` directive.
#[derive(Debug, Clone)]
pub struct AllowDirective {
    /// The check id inside the parentheses, e.g. `lock-order`.
    pub check: String,
    /// Line the comment appears on. A directive suppresses findings on
    /// its own line and on the following line.
    pub line: u32,
}

/// Result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// The token stream, comments and whitespace stripped.
    pub toks: Vec<Tok>,
    /// All allow directives found in comments, in file order.
    pub allows: Vec<AllowDirective>,
}

impl Lexed {
    /// True when `check` is allowed at `line` (directive on the same
    /// line or the line immediately above).
    pub fn allowed(&self, check: &str, line: u32) -> bool {
        self.allows
            .iter()
            .any(|a| a.check == check && (a.line == line || a.line + 1 == line))
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Scans a comment body for allow directives.
fn scan_comment(body: &str, line: u32, out: &mut Vec<AllowDirective>) {
    let mut rest = body;
    let mut line_off = 0u32;
    while let Some(pos) = rest.find("analyze:allow(") {
        line_off += rest[..pos].matches('\n').count() as u32;
        let after = &rest[pos + "analyze:allow(".len()..];
        if let Some(close) = after.find(')') {
            let check = after[..close].trim().to_string();
            if !check.is_empty() {
                out.push(AllowDirective {
                    check,
                    line: line + line_off,
                });
            }
            rest = &after[close..];
        } else {
            break;
        }
    }
}

/// Lexes `src` into tokens and allow directives.
pub fn lex(src: &str) -> Lexed {
    let bytes: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    let n = bytes.len();

    while i < n {
        let c = bytes[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment.
        if c == '/' && i + 1 < n && bytes[i + 1] == '/' {
            let start = i;
            while i < n && bytes[i] != '\n' {
                i += 1;
            }
            let body: String = bytes[start..i].iter().collect();
            scan_comment(&body, line, &mut out.allows);
            continue;
        }
        // Block comment (nested).
        if c == '/' && i + 1 < n && bytes[i + 1] == '*' {
            let start = i;
            let start_line = line;
            let mut depth = 1usize;
            i += 2;
            while i < n && depth > 0 {
                if bytes[i] == '/' && i + 1 < n && bytes[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if bytes[i] == '*' && i + 1 < n && bytes[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    if bytes[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
            let body: String = bytes[start..i].iter().collect();
            scan_comment(&body, start_line, &mut out.allows);
            continue;
        }
        // Raw identifiers and raw / byte strings: r#ident, r"…", r#"…"#,
        // b"…", br#"…"#, b'…'.
        if c == 'r' || c == 'b' {
            let mut j = i;
            let mut _is_byte = false;
            if bytes[j] == 'b' {
                _is_byte = true;
                j += 1;
            }
            let is_raw = j < n && bytes[j] == 'r';
            if is_raw {
                j += 1;
            }
            // r#ident (raw identifier, only for bare `r#` + ident start).
            if c == 'r'
                && !_is_byte
                && i + 1 < n
                && bytes[i + 1] == '#'
                && i + 2 < n
                && is_ident_start(bytes[i + 2])
            {
                let start = i + 2;
                let mut k = start;
                while k < n && is_ident_continue(bytes[k]) {
                    k += 1;
                }
                out.toks.push(Tok {
                    kind: TokKind::Ident,
                    text: bytes[start..k].iter().collect(),
                    line,
                });
                i = k;
                continue;
            }
            if is_raw {
                // Count hashes, then expect a quote.
                let mut k = j;
                let mut hashes = 0usize;
                while k < n && bytes[k] == '#' {
                    hashes += 1;
                    k += 1;
                }
                if k < n && bytes[k] == '"' {
                    let start = i;
                    let start_line = line;
                    k += 1;
                    // Scan to `"` followed by `hashes` hashes.
                    'raw: while k < n {
                        if bytes[k] == '"' {
                            let mut h = 0usize;
                            while k + 1 + h < n && h < hashes && bytes[k + 1 + h] == '#' {
                                h += 1;
                            }
                            if h == hashes {
                                k += 1 + hashes;
                                break 'raw;
                            }
                        }
                        if bytes[k] == '\n' {
                            line += 1;
                        }
                        k += 1;
                    }
                    out.toks.push(Tok {
                        kind: TokKind::Str,
                        text: bytes[start..k].iter().collect(),
                        line: start_line,
                    });
                    i = k;
                    continue;
                }
            }
            if _is_byte && j < n && (bytes[j] == '"' || bytes[j] == '\'') {
                // b"…" / b'…' fall through to the generic quote scanners
                // below by restarting at the quote with a prefix note.
                let quote = bytes[j];
                let start = i;
                let start_line = line;
                let mut k = j + 1;
                while k < n {
                    if bytes[k] == '\\' {
                        k += 2;
                        continue;
                    }
                    if bytes[k] == quote {
                        k += 1;
                        break;
                    }
                    if bytes[k] == '\n' {
                        line += 1;
                    }
                    k += 1;
                }
                out.toks.push(Tok {
                    kind: if quote == '"' {
                        TokKind::Str
                    } else {
                        TokKind::Char
                    },
                    text: bytes[start..k.min(n)].iter().collect(),
                    line: start_line,
                });
                i = k.min(n);
                continue;
            }
            // Plain identifier starting with r/b: fall through.
        }
        if is_ident_start(c) {
            let start = i;
            while i < n && is_ident_continue(bytes[i]) {
                i += 1;
            }
            out.toks.push(Tok {
                kind: TokKind::Ident,
                text: bytes[start..i].iter().collect(),
                line,
            });
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            while i < n
                && (bytes[i].is_ascii_alphanumeric()
                    || bytes[i] == '_'
                    || ((bytes[i] == '+' || bytes[i] == '-')
                        && matches!(bytes[i - 1], 'e' | 'E')
                        && bytes[start..i].iter().all(|&d| d != 'x' && d != 'X')))
            {
                i += 1;
            }
            // Do not swallow a range `0..n` or a method call `1.max(x)`.
            out.toks.push(Tok {
                kind: TokKind::Num,
                text: bytes[start..i].iter().collect(),
                line,
            });
            continue;
        }
        // String literal.
        if c == '"' {
            let start = i;
            let start_line = line;
            i += 1;
            while i < n {
                if bytes[i] == '\\' {
                    i += 2;
                    continue;
                }
                if bytes[i] == '"' {
                    i += 1;
                    break;
                }
                if bytes[i] == '\n' {
                    line += 1;
                }
                i += 1;
            }
            let end = i.min(n);
            out.toks.push(Tok {
                kind: TokKind::Str,
                text: bytes[start..end].iter().collect(),
                line: start_line,
            });
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            // Lifetime: 'ident not closed by a quote.
            if i + 1 < n && is_ident_start(bytes[i + 1]) {
                let mut k = i + 1;
                while k < n && is_ident_continue(bytes[k]) {
                    k += 1;
                }
                if k < n && bytes[k] == '\'' {
                    // 'a' — a char literal.
                    out.toks.push(Tok {
                        kind: TokKind::Char,
                        text: bytes[i..=k].iter().collect(),
                        line,
                    });
                    i = k + 1;
                    continue;
                }
                out.toks.push(Tok {
                    kind: TokKind::Lifetime,
                    text: bytes[i..k].iter().collect(),
                    line,
                });
                i = k;
                continue;
            }
            // Escaped or punctuation char literal: '\n', '\'', '{'.
            let start = i;
            let mut k = i + 1;
            if k < n && bytes[k] == '\\' {
                k += 2;
            } else if k < n {
                k += 1;
            }
            if k < n && bytes[k] == '\'' {
                k += 1;
            }
            out.toks.push(Tok {
                kind: TokKind::Char,
                text: bytes[start..k.min(n)].iter().collect(),
                line,
            });
            i = k.min(n);
            continue;
        }
        // Multi-char punctuation that the parsers rely on.
        let two: String = bytes[i..n.min(i + 2)].iter().collect();
        let three: String = bytes[i..n.min(i + 3)].iter().collect();
        let multi = if three == "..=" || three == "..." {
            Some(three)
        } else if two == "::" || two == "->" || two == "=>" || two == ".." {
            Some(two)
        } else {
            None
        };
        if let Some(m) = multi {
            let len = m.chars().count();
            out.toks.push(Tok {
                kind: TokKind::Punct,
                text: m,
                line,
            });
            i += len;
            continue;
        }
        out.toks.push(Tok {
            kind: TokKind::Punct,
            text: c.to_string(),
            line,
        });
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .toks
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn idents_and_puncts() {
        let t = kinds("fn foo() -> u32 { a::b.c() }");
        assert!(t.contains(&(TokKind::Punct, "->".into())));
        assert!(t.contains(&(TokKind::Punct, "::".into())));
        assert!(t.contains(&(TokKind::Ident, "foo".into())));
    }

    #[test]
    fn raw_strings_and_hashes() {
        let t = kinds(r###"let s = r#"quote " inside"#; let x = 1;"###);
        assert!(t
            .iter()
            .any(|(k, s)| *k == TokKind::Str && s.contains("inside")));
        assert!(t.contains(&(TokKind::Ident, "x".into())));
    }

    #[test]
    fn byte_strings_and_chars() {
        let t = kinds(r#"const M: &[u8; 8] = b"TRPCSNP1"; let c = b'x'; let d = '\n';"#);
        assert!(t
            .iter()
            .any(|(k, s)| *k == TokKind::Str && s.starts_with("b\"")));
        assert!(t
            .iter()
            .any(|(k, s)| *k == TokKind::Char && s.starts_with("b'")));
        assert!(t.iter().any(|(k, s)| *k == TokKind::Char && s == "'\\n'"));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let t = kinds("fn f<'a>(x: &'a str) -> char { 'a' }");
        assert!(t.iter().any(|(k, s)| *k == TokKind::Lifetime && s == "'a"));
        assert!(t.iter().any(|(k, s)| *k == TokKind::Char && s == "'a'"));
    }

    #[test]
    fn nested_block_comments_and_lines() {
        let src = "a\n/* one /* two */ still */\nb";
        let l = lex(src);
        assert_eq!(l.toks.len(), 2);
        assert_eq!(l.toks[1].line, 3);
    }

    #[test]
    fn raw_identifier() {
        let t = kinds("let r#match = 1;");
        assert!(t.contains(&(TokKind::Ident, "match".into())));
    }

    #[test]
    fn allow_directives_parse() {
        let src = "x(); // analyze:allow(lock-order): deliberate\ny();\n// analyze:allow(panic-path): startup only\nz();";
        let l = lex(src);
        assert_eq!(l.allows.len(), 2);
        assert_eq!(l.allows[0].check, "lock-order");
        assert_eq!(l.allows[0].line, 1);
        assert!(l.allowed("lock-order", 1));
        assert!(l.allowed("panic-path", 4)); // line after the directive
        assert!(!l.allowed("panic-path", 5));
    }

    #[test]
    fn string_with_embedded_comment_markers() {
        let t = kinds(r#"let s = "// not a comment /* nor this */"; done"#);
        assert!(t.iter().any(|(k, _)| *k == TokKind::Str));
        assert!(t.contains(&(TokKind::Ident, "done".into())));
    }
}

//! Scope tracking over the token stream: function body spans and
//! `#[cfg(test)]` / `#[test]` exclusion masking.
//!
//! The checks only audit production code, so everything under a test
//! attribute is masked out before any check runs.

use crate::lexer::{Lexed, Tok, TokKind};

/// A function found in the file.
#[derive(Debug, Clone)]
pub struct FnSpan {
    /// Function name (last `fn <name>` identifier).
    pub name: String,
    /// Token index of the body's opening `{`.
    pub body_start: usize,
    /// Token index of the body's closing `}` (inclusive).
    pub body_end: usize,
    /// Source line of the `fn` keyword.
    pub line: u32,
}

/// Per-file scope analysis: test mask plus function spans.
#[derive(Debug)]
pub struct FileScopes {
    /// `true` for each token that lives under `#[cfg(test)]` or `#[test]`.
    pub test_mask: Vec<bool>,
    /// All non-test functions, in file order.
    pub fns: Vec<FnSpan>,
}

/// Finds the matching `}` for the `{` at `open` (returns the index of
/// the closing brace, or the last token when unbalanced).
pub fn matching_brace(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0usize;
    for (i, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct("{") {
            depth += 1;
        } else if t.is_punct("}") {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    toks.len().saturating_sub(1)
}

/// True when tokens at `i` start a test attribute: `#[cfg(test)]`,
/// `#[test]`, or `#[cfg(all(test, …))]`-style forms mentioning `test`
/// inside a `cfg(...)`.
fn is_test_attr(toks: &[Tok], i: usize) -> bool {
    if !toks[i].is_punct("#") || i + 1 >= toks.len() || !toks[i + 1].is_punct("[") {
        return false;
    }
    // Scan the attribute body up to the matching `]`.
    let mut depth = 0usize;
    let mut body = Vec::new();
    for t in &toks[i + 1..] {
        if t.is_punct("[") {
            depth += 1;
            if depth == 1 {
                continue;
            }
        }
        if t.is_punct("]") {
            depth -= 1;
            if depth == 0 {
                break;
            }
        }
        body.push(t);
    }
    if body.is_empty() {
        return false;
    }
    if body[0].is_ident("test") && body.len() == 1 {
        return true;
    }
    if body[0].is_ident("cfg") {
        // `test` counts unless negated, as in `cfg(not(test))`.
        for (k, t) in body.iter().enumerate() {
            if t.is_ident("test") && !(k >= 2 && body[k - 2].is_ident("not")) {
                return true;
            }
        }
    }
    false
}

/// Marks the item that follows the attribute at `attr_start` (the `#`
/// token) as test code, returning the index just past the item.
fn mask_item(toks: &[Tok], attr_start: usize, mask: &mut [bool]) -> usize {
    let mut i = attr_start;
    // Skip over any stacked attributes.
    while i < toks.len() && toks[i].is_punct("#") {
        // Skip the `[...]` group.
        let mut depth = 0usize;
        i += 1;
        while i < toks.len() {
            if toks[i].is_punct("[") {
                depth += 1;
            } else if toks[i].is_punct("]") {
                depth -= 1;
                if depth == 0 {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
    }
    // Walk to the item body `{` or a terminating `;`, skipping paren
    // groups (fn signatures) on the way.
    let mut j = i;
    let mut paren = 0usize;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct("(") {
            paren += 1;
        } else if t.is_punct(")") {
            paren = paren.saturating_sub(1);
        } else if paren == 0 && t.is_punct(";") {
            j += 1;
            break;
        } else if paren == 0 && t.is_punct("{") {
            j = matching_brace(toks, j) + 1;
            break;
        }
        j += 1;
    }
    for m in mask.iter_mut().take(j.min(toks.len())).skip(attr_start) {
        *m = true;
    }
    j
}

/// Computes the test mask and function spans for a lexed file.
pub fn analyze_scopes(lexed: &Lexed) -> FileScopes {
    let toks = &lexed.toks;
    let mut mask = vec![false; toks.len()];

    // Pass 1: mask out test attributes and the items they annotate.
    let mut i = 0usize;
    while i < toks.len() {
        if !mask[i] && is_test_attr(toks, i) {
            i = mask_item(toks, i, &mut mask);
        } else {
            i += 1;
        }
    }

    // Pass 2: collect non-test function spans.
    let mut fns = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if mask[i] || !toks[i].is_ident("fn") {
            i += 1;
            continue;
        }
        // `fn` inside a type position (`Fn(..)`, `fn(..)` pointers) has
        // no following plain ident; require `fn <ident>`.
        let Some(name_tok) = toks.get(i + 1) else {
            break;
        };
        if name_tok.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        let name = name_tok.text.clone();
        let line = toks[i].line;
        // Find the body `{` at paren depth 0 (skips the signature and
        // where clause); a trait method declaration ends with `;`.
        let mut j = i + 2;
        let mut paren = 0usize;
        let mut body = None;
        while j < toks.len() {
            let t = &toks[j];
            if t.is_punct("(") || t.is_punct("[") {
                paren += 1;
            } else if t.is_punct(")") || t.is_punct("]") {
                paren = paren.saturating_sub(1);
            } else if paren == 0 && t.is_punct(";") {
                break;
            } else if paren == 0 && t.is_punct("{") {
                body = Some(j);
                break;
            }
            j += 1;
        }
        let Some(body_start) = body else {
            i = j + 1;
            continue;
        };
        let body_end = matching_brace(toks, body_start);
        fns.push(FnSpan {
            name,
            body_start,
            body_end,
            line,
        });
        // Nested fns are found by continuing the scan inside the body.
        i += 2;
    }

    FileScopes {
        test_mask: mask,
        fns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn finds_functions_and_bodies() {
        let l = lex("impl Foo { fn a(&self) -> u32 { 1 } }\nfn b() { {} }");
        let s = analyze_scopes(&l);
        let names: Vec<&str> = s.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn masks_cfg_test_modules() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests { fn dead() { x.lock(); } }";
        let l = lex(src);
        let s = analyze_scopes(&l);
        let names: Vec<&str> = s.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["live"]);
    }

    #[test]
    fn masks_test_fns_but_not_neighbors() {
        let src = "#[test]\nfn t() { panic!() }\nfn live() {}";
        let l = lex(src);
        let s = analyze_scopes(&l);
        let names: Vec<&str> = s.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["live"]);
    }

    #[test]
    fn where_clause_and_return_types_are_skipped() {
        let src = "fn f<T>(x: T) -> impl Fn() -> u32 where T: Clone { move || 1 }";
        let l = lex(src);
        let s = analyze_scopes(&l);
        assert_eq!(s.fns.len(), 1);
        assert!(l.toks[s.fns[0].body_start].is_punct("{"));
    }

    #[test]
    fn nested_fns_are_separate_spans() {
        let src = "fn outer() { fn inner() { 1 } inner(); }";
        let l = lex(src);
        let s = analyze_scopes(&l);
        let names: Vec<&str> = s.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["outer", "inner"]);
    }

    #[test]
    fn cfg_all_test_is_masked() {
        let src = "#[cfg(all(test, feature = \"x\"))]\nmod m { fn dead() {} }\nfn live() {}";
        let l = lex(src);
        let s = analyze_scopes(&l);
        let names: Vec<&str> = s.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["live"]);
    }
}

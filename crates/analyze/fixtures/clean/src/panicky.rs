//! Panic sites that are all accounted for: one inline allow, one
//! budgeted in this tree's `analyze/allow.toml`.

pub fn first_word(input: &str) -> &str {
    // analyze:allow(panic-path): split always yields at least one item
    input.split(' ').next().unwrap()
}

pub fn parse_port(input: &str) -> u16 {
    input.parse().expect("a port number")
}

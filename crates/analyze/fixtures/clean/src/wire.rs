//! Clean wire schema: matches the committed `WIRE_SCHEMAS.lock` exactly.

pub const WIRE_VERSION: u32 = 1;

#[derive(Serialize, Deserialize)]
pub struct Envelope {
    pub v: u32,
    pub msg: InputMsg,
}

#[derive(Serialize, Deserialize)]
pub enum InputMsg {
    Submit { id: u64 },
    Cancel { id: u64 },
}

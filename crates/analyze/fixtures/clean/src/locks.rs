//! Clean locking: every path takes `accounts` before `ledger`, and one
//! deliberate blocking call under a guard carries an inline allow.

pub struct Bank {
    accounts: Mutex<Vec<u64>>,
    ledger: Mutex<Vec<String>>,
    file: std::fs::File,
}

impl Bank {
    pub fn transfer(&self) {
        let accounts = self.accounts.lock();
        let ledger = self.ledger.lock();
        drop(ledger);
        drop(accounts);
    }

    pub fn audit(&self) {
        let accounts = self.accounts.lock();
        let ledger = self.ledger.lock();
        drop(accounts);
        drop(ledger);
    }

    pub fn checkpoint(&self) {
        let ledger = self.ledger.lock();
        // analyze:allow(blocking-under-lock): durability point — readers must not observe the pre-sync ledger
        self.file.sync_all();
        drop(ledger);
    }
}

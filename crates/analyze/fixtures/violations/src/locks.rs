//! Seeded lock-order violation: `transfer` takes `accounts` then
//! `ledger`, while `audit` takes them in the opposite order — a classic
//! ABBA deadlock once two threads interleave.

pub struct Bank {
    accounts: Mutex<Vec<u64>>,
    ledger: Mutex<Vec<String>>,
}

impl Bank {
    pub fn transfer(&self) {
        let accounts = self.accounts.lock();
        let ledger = self.ledger.lock();
        drop(ledger);
        drop(accounts);
    }

    pub fn audit(&self) {
        let ledger = self.ledger.lock();
        let accounts = self.accounts.lock();
        drop(accounts);
        drop(ledger);
    }
}

//! Seeded blocking-under-lock violation: an fsync issued while the
//! state mutex guard is still live, serializing every reader behind
//! device latency.

pub struct Journal {
    state: Mutex<Vec<u8>>,
    file: std::fs::File,
}

impl Journal {
    pub fn checkpoint(&self) {
        let state = self.state.lock();
        self.file.sync_all();
        drop(state);
    }
}

//! Seeded schema-drift violation: `Envelope` grew a field without a
//! `#[serde(default)]` and without bumping `WIRE_VERSION`, so old peers
//! fail to decode new frames. The committed `WIRE_SCHEMAS.lock` next to
//! this tree fingerprints the *previous* shape.

pub const WIRE_VERSION: u32 = 1;

#[derive(Serialize, Deserialize)]
pub struct Envelope {
    pub v: u32,
    pub msg: InputMsg,
    pub trace_id: u64,
}

#[derive(Serialize, Deserialize)]
pub enum InputMsg {
    Submit { id: u64 },
    Cancel { id: u64 },
}

//! Seeded panic-path violation: unwraps in production code with a zero
//! budget in this tree's `analyze/allow.toml`.

pub fn first_word(input: &str) -> &str {
    input.split(' ').next().unwrap()
}

pub fn parse_port(input: &str) -> u16 {
    input.parse().expect("a port number")
}

#[cfg(test)]
mod tests {
    // Test code is exempt: this unwrap must NOT count.
    #[test]
    fn exempt() {
        super::parse_port("80");
        "x".parse::<u16>().unwrap_err();
    }
}

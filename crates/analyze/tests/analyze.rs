//! End-to-end tests over the committed fixture trees: each check family
//! fires on the seeded violations, inline allows and budgets silence the
//! clean tree, and reports are byte-deterministic.

use std::path::{Path, PathBuf};

use tropic_analyze::report::check;
use tropic_analyze::schema::Registry;
use tropic_analyze::{analyze, self_test, Analysis, Options};

fn fixtures() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

fn run(tree: &str) -> Analysis {
    let opts = Options {
        root: fixtures().join(tree),
        registry: Registry::fixtures(),
    };
    analyze(&opts).expect("fixture tree analyzes")
}

#[test]
fn violations_fire_every_check_family() {
    let v = run("violations");
    for id in [
        check::LOCK_ORDER,
        check::BLOCKING,
        check::SCHEMA,
        check::PANIC,
    ] {
        assert!(
            v.findings.iter().any(|f| f.check == id),
            "seeded tree must fire {id}; report:\n{}",
            v.report
        );
    }
}

#[test]
fn lock_order_finding_names_both_sites() {
    let v = run("violations");
    let f = v
        .findings
        .iter()
        .find(|f| f.check == check::LOCK_ORDER)
        .expect("lock-order finding");
    assert_eq!(f.file, "src/locks.rs");
    assert!(
        f.message.contains("accounts") && f.message.contains("ledger"),
        "both locks named: {}",
        f.message
    );
    assert!(
        f.message.contains("elsewhere"),
        "two-site diagnostic cites the opposite order: {}",
        f.message
    );
}

#[test]
fn blocking_finding_names_the_call_and_the_lock() {
    let v = run("violations");
    let f = v
        .findings
        .iter()
        .find(|f| f.check == check::BLOCKING)
        .expect("blocking finding");
    assert_eq!(f.file, "src/blocking.rs");
    assert!(f.message.contains("sync_all"), "{}", f.message);
    assert!(f.message.contains("state"), "{}", f.message);
}

#[test]
fn schema_drift_names_the_envelope_type() {
    let v = run("violations");
    let f = v
        .findings
        .iter()
        .find(|f| f.check == check::SCHEMA)
        .expect("schema finding");
    assert!(f.message.contains("Envelope"), "{}", f.message);
}

#[test]
fn panic_findings_skip_test_code() {
    let v = run("violations");
    let panics: Vec<_> = v
        .findings
        .iter()
        .filter(|f| f.check == check::PANIC)
        .collect();
    // panicky.rs holds two production sites and one inside #[cfg(test)].
    assert_eq!(panics.len(), 2, "report:\n{}", v.report);
    assert!(panics.iter().all(|f| f.file == "src/panicky.rs"));
}

#[test]
fn clean_tree_is_silent_through_allows_and_budgets() {
    let c = run("clean");
    assert!(
        c.findings.is_empty(),
        "allows + budgets + matching lock must silence the tree:\n{}",
        c.report
    );
}

#[test]
fn reports_are_byte_deterministic() {
    let a = run("violations");
    let b = run("violations");
    assert_eq!(a.report, b.report);
    let c = run("clean");
    let d = run("clean");
    assert_eq!(c.report, d.report);
}

#[test]
fn self_test_entry_point_passes_on_committed_fixtures() {
    let msg = self_test(&fixtures()).expect("self-test passes");
    assert!(msg.contains("self-test OK"), "{msg}");
}

#[test]
fn repo_tree_has_no_lock_or_blocking_regressions() {
    // The real tree: the committed allow.toml and WIRE_SCHEMAS.lock keep
    // it at zero findings; lock-order and blocking findings in particular
    // must never appear (they have no budget escape).
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let analysis = analyze(&Options::repo(root)).expect("repo analyzes");
    for f in &analysis.findings {
        assert_ne!(f.check, check::LOCK_ORDER, "{f}");
        assert_ne!(f.check, check::BLOCKING, "{f}");
    }
}

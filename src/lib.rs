//! # tropic
//!
//! Umbrella crate for the Rust reproduction of **TROPIC: Transactional
//! Resource Orchestration Platform In the Cloud** (Liu, Mao, Chen,
//! Fernández, Loo, Van der Merwe — USENIX ATC 2012).
//!
//! Re-exports the whole stack:
//!
//! * [`model`] — hierarchical data model, constraints, schemas, clock;
//! * [`coord`] — replicated coordination service (ZooKeeper substitute);
//! * [`devices`] — simulated compute/storage/network devices;
//! * [`core`] — the transactional orchestration platform itself;
//! * [`tcloud`] — the EC2-like TCloud service built on the platform;
//! * [`workload`] — EC2/hosting workload generators and replay.
//!
//! ```
//! use std::time::Duration;
//! use tropic::core::{ExecMode, PlatformConfig, Priority, Tropic, TxnRequest, TxnState};
//! use tropic::tcloud::TopologySpec;
//!
//! let spec = TopologySpec { compute_hosts: 2, storage_hosts: 1, routers: 0, ..Default::default() };
//! let devices = spec.build_devices(&tropic::devices::LatencyModel::zero());
//! let platform = Tropic::start(
//!     PlatformConfig { controllers: 1, ..Default::default() },
//!     spec.service(),
//!     ExecMode::Physical(devices.registry.clone()),
//! );
//! let client = platform.client();
//! let outcome = client
//!     .submit_request(
//!         TxnRequest::new("spawnVM")
//!             .args(spec.spawn_args("web1", 0, 2048))
//!             .priority(Priority::High)
//!             .deadline(Duration::from_secs(30))
//!             .idempotency_key("spawn-web1"),
//!     )
//!     .unwrap()
//!     .wait()
//!     .unwrap();
//! assert_eq!(outcome.state, TxnState::Committed);
//! platform.shutdown();
//! ```

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

pub use tropic_coord as coord;
pub use tropic_core as core;
pub use tropic_devices as devices;
pub use tropic_model as model;
pub use tropic_tcloud as tcloud;
pub use tropic_workload as workload;

#!/usr/bin/env bash
# CI entry point: everything a PR must keep green, in dependency order.
#
# Usage: ./ci.sh [--no-clippy | --bench-snapshot | --doc]
#   --no-clippy       skip the clippy pass (e.g. when the component is absent)
#   --doc             run only the documentation gate: `cargo doc --no-deps`
#                     with RUSTDOCFLAGS="-D warnings" (broken intra-doc
#                     links, bad code blocks, etc. fail the build)
#   --bench-snapshot  run the commit_path, coord_store, and recovery benches
#                     in quick mode, write BENCH_commit_path.json and
#                     BENCH_recovery.json (the perf-trajectory data points),
#                     and gate on the group-commit speedup
#                     (TROPIC_BENCH_MIN_SPEEDUP, default 1.5) and the
#                     snapshot-recovery speedup over full-log replay
#                     (TROPIC_BENCH_MIN_RECOVERY_SPEEDUP, default 2.0)
set -euo pipefail
cd "$(dirname "$0")"

run() {
    echo
    echo "=== $* ==="
    "$@"
}

bench_snapshot() {
    local out="BENCH_commit_path.json"
    local raw
    raw="$(mktemp)"
    trap 'rm -f "$raw"' RETURN

    TROPIC_BENCH_QUICK=1 TROPIC_BENCH_JSON="$raw" run cargo bench --bench commit_path
    TROPIC_BENCH_QUICK=1 TROPIC_BENCH_JSON="$raw" run cargo bench --bench coord_store

    local min_speedup="${TROPIC_BENCH_MIN_SPEEDUP:-1.5}"
    awk -v min_speedup="$min_speedup" '
        # Input lines: {"name":"group/bench","mean_ns":N,"iterations":I}
        {
            line = $0
            gsub(/[{}"]/, "", line)
            split(line, kv, ",")
            name = ""; mean = 0; iters = 0
            for (i in kv) {
                split(kv[i], pair, ":")
                if (pair[1] == "name") name = pair[2]
                if (pair[1] == "mean_ns") mean = pair[2] + 0
                if (pair[1] == "iterations") iters = pair[2] + 0
            }
            if (name == "") next
            names[++n] = name; means[name] = mean; iter_count[name] = iters
        }
        END {
            before = means["commit_path/per_record"]
            after = means["commit_path/group_commit"]
            if (before == 0 || after == 0) {
                print "bench snapshot missing commit_path results" > "/dev/stderr"
                exit 1
            }
            speedup = before / after
            printf "{\n  \"bench\": \"commit_path\",\n  \"mode\": \"quick\",\n"
            printf "  \"results\": [\n"
            for (i = 1; i <= n; i++) {
                name = names[i]
                printf "    {\"name\": \"%s\", \"mean_ns\": %d, \"iterations\": %d, \"throughput_per_sec\": %.2f}%s\n", \
                    name, means[name], iter_count[name], 1e9 / means[name], (i < n ? "," : "")
            }
            printf "  ],\n"
            printf "  \"group_commit\": {\n"
            printf "    \"per_record_mean_ns\": %d,\n", before
            printf "    \"group_commit_mean_ns\": %d,\n", after
            printf "    \"speedup\": %.3f,\n", speedup
            printf "    \"min_speedup\": %.2f\n", min_speedup
            printf "  }\n}\n"
            if (speedup < min_speedup) {
                printf "perf gate FAILED: group-commit speedup %.3f < %.2f\n", speedup, min_speedup > "/dev/stderr"
                exit 2
            }
        }
    ' "$raw" > "$out" || { cat "$out"; exit 1; }

    echo
    echo "=== $out ==="
    cat "$out"
    echo
    echo "Perf gate passed."
}

bench_recovery_snapshot() {
    local out="BENCH_recovery.json"
    local raw
    raw="$(mktemp)"
    trap 'rm -f "$raw"' RETURN

    TROPIC_BENCH_QUICK=1 TROPIC_BENCH_JSON="$raw" run cargo bench --bench recovery

    local min_speedup="${TROPIC_BENCH_MIN_RECOVERY_SPEEDUP:-2.0}"
    awk -v min_speedup="$min_speedup" '
        # Input lines: {"name":"group/bench","mean_ns":N,"iterations":I}
        {
            line = $0
            gsub(/[{}"]/, "", line)
            split(line, kv, ",")
            name = ""; mean = 0; iters = 0
            for (i in kv) {
                split(kv[i], pair, ":")
                if (pair[1] == "name") name = pair[2]
                if (pair[1] == "mean_ns") mean = pair[2] + 0
                if (pair[1] == "iterations") iters = pair[2] + 0
            }
            if (name == "") next
            names[++n] = name; means[name] = mean; iter_count[name] = iters
        }
        END {
            full = means["recovery/full_log_replay"]
            snap = means["recovery/snapshot_suffix"]
            if (full == 0 || snap == 0) {
                print "bench snapshot missing recovery results" > "/dev/stderr"
                exit 1
            }
            speedup = full / snap
            printf "{\n  \"bench\": \"recovery\",\n  \"mode\": \"quick\",\n"
            printf "  \"results\": [\n"
            for (i = 1; i <= n; i++) {
                name = names[i]
                printf "    {\"name\": \"%s\", \"mean_ns\": %d, \"iterations\": %d}%s\n", \
                    name, means[name], iter_count[name], (i < n ? "," : "")
            }
            printf "  ],\n"
            printf "  \"snapshot_recovery\": {\n"
            printf "    \"full_log_replay_mean_ns\": %d,\n", full
            printf "    \"snapshot_suffix_mean_ns\": %d,\n", snap
            printf "    \"speedup\": %.3f,\n", speedup
            printf "    \"min_speedup\": %.2f\n", min_speedup
            printf "  }\n}\n"
            if (speedup < min_speedup) {
                printf "perf gate FAILED: snapshot-recovery speedup %.3f < %.2f\n", speedup, min_speedup > "/dev/stderr"
                exit 2
            }
        }
    ' "$raw" > "$out" || { cat "$out"; exit 1; }

    echo
    echo "=== $out ==="
    cat "$out"
    echo
    echo "Recovery perf gate passed."
}

doc_gate() {
    RUSTDOCFLAGS="-D warnings" run cargo doc --no-deps --workspace
    echo
    echo "Doc gate passed."
}

if [[ "${1:-}" == "--bench-snapshot" ]]; then
    bench_snapshot
    bench_recovery_snapshot
    exit 0
fi

if [[ "${1:-}" == "--doc" ]]; then
    doc_gate
    exit 0
fi

run cargo build --release
run cargo test -q
run cargo bench --no-run
run cargo build --examples
doc_gate
run cargo fmt --check

if [[ "${1:-}" != "--no-clippy" ]] && cargo clippy --version >/dev/null 2>&1; then
    run cargo clippy -q --all-targets -- -D warnings
fi

echo
echo "CI green."

#!/usr/bin/env bash
# CI entry point: everything a PR must keep green, in dependency order.
#
# Usage: ./ci.sh [--no-clippy | --bench-snapshot | --doc | --rpc-smoke |
#                 --test-bench-parser | --chaos-smoke | --chaos-trend |
#                 --md-links | --analyze]
#   --no-clippy          skip the clippy pass (e.g. when the component is absent)
#   --analyze            run only the static-analysis gate: tropic-analyze's
#                        fixture self-test, then the four repo checks
#                        (lock-order, blocking-under-lock, schema-drift,
#                        panic-path; see docs/STATIC_ANALYSIS.md), writing
#                        ANALYZE_report.txt
#   --doc                run only the documentation gate: `cargo doc --no-deps`
#                        with RUSTDOCFLAGS="-D warnings" (broken intra-doc
#                        links, bad code blocks, etc. fail the build)
#   --rpc-smoke          spawn the remote_quickstart server and client as two
#                        separate OS processes on a loopback socket, run a
#                        transaction + a subscription to its terminal event,
#                        and assert both processes shut down cleanly
#   --chaos-smoke        short deterministic chaos run (open-loop load with a
#                        leader kill + device-failure storm, then a torn-WAL
#                        restart), asserting zero acknowledged-transaction
#                        loss; writes CHAOS_report.json
#   --chaos-trend        print the per-lane committed p50/p99 trajectory
#                        across the committed CHAOS_baseline.jsonl series and
#                        the current CHAOS_report.json, failing when a lane's
#                        p99 blows past the latest baseline point by more
#                        than TROPIC_CHAOS_TREND_MAX_FACTOR (default 3.0)
#   --md-links           check that relative links and #anchors in README,
#                        ROADMAP, CHANGES, and docs/*.md resolve
#   --test-bench-parser  self-test the bench-JSON parser against reordered
#                        keys and malformed lines
#   --bench-snapshot     run the commit_path, coord_store, snapshot, recovery,
#                        and rpc_roundtrip benches in quick mode plus the
#                        chaos bench run, write BENCH_commit_path.json,
#                        BENCH_snapshot.json, BENCH_recovery.json,
#                        BENCH_rpc.json, and BENCH_chaos.json (the
#                        perf-trajectory data points), and gate on the
#                        group-commit speedup (TROPIC_BENCH_MIN_SPEEDUP,
#                        default 1.65), the delta-snapshot size ratio at
#                        5%-dirty (TROPIC_BENCH_MAX_DELTA_RATIO, default
#                        0.25), the pipelined-fsync speedup on the 16k-node
#                        store (TROPIC_BENCH_MIN_PIPELINE_SPEEDUP, default
#                        1.3), the snapshot-recovery speedup over full-log
#                        replay (TROPIC_BENCH_MIN_RECOVERY_SPEEDUP, default
#                        2.0), the RPC socket overhead over the in-process
#                        client (TROPIC_BENCH_MAX_RPC_OVERHEAD, default 1.5),
#                        the RPC reactor's live-connection fan-in
#                        (TROPIC_BENCH_MIN_CONNS idle subscriptions held on
#                        one event loop, default 1000),
#                        and the chaos per-lane committed p99 under a leader
#                        kill (TROPIC_BENCH_MAX_CHAOS_P99_MS, default 1500)
#                        with zero acknowledged loss; also runs the reconcile
#                        bench (drift-to-converged MTTR at 1k and 16k
#                        resources), writes BENCH_reconcile.json, and gates
#                        the p99 MTTR (TROPIC_BENCH_MAX_RECONCILE_P99_MS,
#                        default 8000)
set -euo pipefail
cd "$(dirname "$0")"

run() {
    echo
    echo "=== $* ==="
    "$@"
}

# Parses bench-snapshot JSON lines ({"name":...,"mean_ns":...,"iterations":...})
# into TSV `name<TAB>mean_ns<TAB>iterations` rows. Each key is extracted by
# its own regex, so the parse is independent of key order inside the object,
# and any line missing a key fails the build loudly instead of being
# silently skipped.
parse_bench_lines() {
    awk '
        /^[[:space:]]*$/ { next }
        {
            name = ""; mean = ""; iters = ""
            if (match($0, /"name"[[:space:]]*:[[:space:]]*"[^"]*"/)) {
                kv = substr($0, RSTART, RLENGTH)
                sub(/^"name"[[:space:]]*:[[:space:]]*"/, "", kv)
                sub(/"$/, "", kv)
                name = kv
            }
            if (match($0, /"mean_ns"[[:space:]]*:[[:space:]]*[0-9]+/)) {
                kv = substr($0, RSTART, RLENGTH)
                sub(/^[^:]*:[[:space:]]*/, "", kv)
                mean = kv
            }
            if (match($0, /"iterations"[[:space:]]*:[[:space:]]*[0-9]+/)) {
                kv = substr($0, RSTART, RLENGTH)
                sub(/^[^:]*:[[:space:]]*/, "", kv)
                iters = kv
            }
            if (name == "" || mean == "" || iters == "") {
                printf "malformed bench JSON on line %d (need name, mean_ns, iterations): %s\n", NR, $0 > "/dev/stderr"
                exit 1
            }
            printf "%s\t%s\t%s\n", name, mean, iters
        }
    '
}

test_bench_parser() {
    echo
    echo "=== bench-parser self-test ==="
    local out
    # Canonical key order parses.
    out="$(printf '{"name":"g/a","mean_ns":120,"iterations":7}\n' | parse_bench_lines)"
    [[ "$out" == "$(printf 'g/a\t120\t7')" ]] || {
        echo "parser failed on canonical key order: $out" >&2
        exit 1
    }
    # Reordered keys parse identically: the parse must not assume the
    # name/mean_ns/iterations order the writer happens to emit.
    out="$(printf '{"iterations":7,"mean_ns":120,"name":"g/a"}\n' | parse_bench_lines)"
    [[ "$out" == "$(printf 'g/a\t120\t7')" ]] || {
        echo "parser failed on reordered keys: $out" >&2
        exit 1
    }
    # Whitespace around separators is tolerated.
    out="$(printf '{ "mean_ns" : 99 , "name" : "g/b" , "iterations" : 3 }\n' | parse_bench_lines)"
    [[ "$out" == "$(printf 'g/b\t99\t3')" ]] || {
        echo "parser failed on spaced JSON: $out" >&2
        exit 1
    }
    # A line missing a required key must fail loudly, not be skipped.
    if printf '{"name":"g/c","iterations":3}\n' | parse_bench_lines >/dev/null 2>&1; then
        echo "parser silently accepted a line without mean_ns" >&2
        exit 1
    fi
    # Garbage must fail loudly too.
    if printf 'not json at all\n' | parse_bench_lines >/dev/null 2>&1; then
        echo "parser silently accepted a non-JSON line" >&2
        exit 1
    fi
    echo "bench-parser self-test passed."
}

bench_snapshot() {
    local out="BENCH_commit_path.json"
    local raw tsv
    raw="$(mktemp)"
    tsv="$(mktemp)"
    trap 'rm -f "$raw" "$tsv"' RETURN

    TROPIC_BENCH_QUICK=1 TROPIC_BENCH_JSON="$raw" run cargo bench --bench commit_path
    TROPIC_BENCH_QUICK=1 TROPIC_BENCH_JSON="$raw" run cargo bench --bench coord_store

    parse_bench_lines < "$raw" > "$tsv"
    # The snapshot-format gate reuses the durable-variant rows rather than
    # re-running the (slow) commit_path bench.
    if [[ -n "${COMMIT_TSV:-}" ]]; then
        cp "$tsv" "$COMMIT_TSV"
    fi
    local min_speedup="${TROPIC_BENCH_MIN_SPEEDUP:-1.65}"
    awk -F'\t' -v min_speedup="$min_speedup" '
        { names[++n] = $1; means[$1] = $2; iter_count[$1] = $3 }
        END {
            before = means["commit_path/per_record"]
            after = means["commit_path/group_commit"]
            if (before == 0 || after == 0) {
                print "bench snapshot missing commit_path results" > "/dev/stderr"
                exit 1
            }
            speedup = before / after
            printf "{\n  \"bench\": \"commit_path\",\n  \"mode\": \"quick\",\n"
            printf "  \"results\": [\n"
            for (i = 1; i <= n; i++) {
                name = names[i]
                printf "    {\"name\": \"%s\", \"mean_ns\": %d, \"iterations\": %d, \"throughput_per_sec\": %.2f}%s\n", \
                    name, means[name], iter_count[name], 1e9 / means[name], (i < n ? "," : "")
            }
            printf "  ],\n"
            printf "  \"group_commit\": {\n"
            printf "    \"per_record_mean_ns\": %d,\n", before
            printf "    \"group_commit_mean_ns\": %d,\n", after
            printf "    \"speedup\": %.3f,\n", speedup
            printf "    \"min_speedup\": %.2f\n", min_speedup
            printf "  }\n}\n"
            if (speedup < min_speedup) {
                printf "perf gate FAILED: group-commit speedup %.3f < %.2f\n", speedup, min_speedup > "/dev/stderr"
                exit 2
            }
        }
    ' "$tsv" > "$out" || { cat "$out"; exit 1; }

    echo
    echo "=== $out ==="
    cat "$out"
    echo
    echo "Perf gate passed."
}

# Snapshot-format gates: a delta at 5%-dirty must stay a small fraction of
# a full rewrite, and the pipelined sync policy must beat serial fsync on
# the larger (16k-node) store. The fsync rows come from the commit_path run
# that bench_snapshot() already did (via COMMIT_TSV); only the snapshot
# micro-bench runs here.
bench_snapshot_format() {
    local out="BENCH_snapshot.json"
    local raw tsv
    raw="$(mktemp)"
    tsv="$(mktemp)"
    trap 'rm -f "$raw" "$tsv"' RETURN

    TROPIC_BENCH_QUICK=1 TROPIC_BENCH_JSON="$raw" run cargo bench --bench snapshot

    parse_bench_lines < "$raw" > "$tsv"
    if [[ -n "${COMMIT_TSV:-}" && -s "${COMMIT_TSV:-}" ]]; then
        grep -E '^commit_path/(serial|pipelined)_fsync' "$COMMIT_TSV" >> "$tsv"
    fi
    local max_ratio="${TROPIC_BENCH_MAX_DELTA_RATIO:-0.25}"
    local min_pipeline="${TROPIC_BENCH_MIN_PIPELINE_SPEEDUP:-1.3}"
    awk -F'\t' -v max_ratio="$max_ratio" -v min_pipeline="$min_pipeline" '
        { names[++n] = $1; means[$1] = $2; iter_count[$1] = $3 }
        END {
            full_b = means["snapshot/full_bytes"]
            delta_b = means["snapshot/delta_bytes"]
            serial = means["commit_path/serial_fsync_16k"]
            piped = means["commit_path/pipelined_fsync_16k"]
            if (full_b == 0 || delta_b == 0) {
                print "bench snapshot missing snapshot byte counts" > "/dev/stderr"
                exit 1
            }
            if (serial == 0 || piped == 0) {
                print "bench snapshot missing commit_path fsync results (run bench_snapshot first)" > "/dev/stderr"
                exit 1
            }
            ratio = delta_b / full_b
            speedup = serial / piped
            printf "{\n  \"bench\": \"snapshot\",\n  \"mode\": \"quick\",\n"
            printf "  \"results\": [\n"
            for (i = 1; i <= n; i++) {
                name = names[i]
                printf "    {\"name\": \"%s\", \"mean_ns\": %d, \"iterations\": %d}%s\n", \
                    name, means[name], iter_count[name], (i < n ? "," : "")
            }
            printf "  ],\n"
            printf "  \"delta_snapshot\": {\n"
            printf "    \"full_bytes\": %d,\n", full_b
            printf "    \"delta_bytes\": %d,\n", delta_b
            printf "    \"ratio\": %.4f,\n", ratio
            printf "    \"max_ratio\": %.2f\n", max_ratio
            printf "  },\n"
            printf "  \"pipelined_fsync\": {\n"
            printf "    \"serial_fsync_16k_mean_ns\": %d,\n", serial
            printf "    \"pipelined_fsync_16k_mean_ns\": %d,\n", piped
            printf "    \"speedup\": %.3f,\n", speedup
            printf "    \"min_speedup\": %.2f\n", min_pipeline
            printf "  }\n}\n"
            if (ratio > max_ratio) {
                printf "perf gate FAILED: delta snapshot is %.1f%% of a full snapshot > %.1f%%\n", \
                    ratio * 100, max_ratio * 100 > "/dev/stderr"
                exit 2
            }
            if (speedup < min_pipeline) {
                printf "perf gate FAILED: pipelined-fsync speedup %.3f < %.2f\n", speedup, min_pipeline > "/dev/stderr"
                exit 2
            }
        }
    ' "$tsv" > "$out" || { cat "$out"; exit 1; }

    echo
    echo "=== $out ==="
    cat "$out"
    echo
    echo "Snapshot-format perf gate passed."
}

bench_recovery_snapshot() {
    local out="BENCH_recovery.json"
    local raw tsv
    raw="$(mktemp)"
    tsv="$(mktemp)"
    trap 'rm -f "$raw" "$tsv"' RETURN

    TROPIC_BENCH_QUICK=1 TROPIC_BENCH_JSON="$raw" run cargo bench --bench recovery

    parse_bench_lines < "$raw" > "$tsv"
    local min_speedup="${TROPIC_BENCH_MIN_RECOVERY_SPEEDUP:-2.0}"
    awk -F'\t' -v min_speedup="$min_speedup" '
        { names[++n] = $1; means[$1] = $2; iter_count[$1] = $3 }
        END {
            full = means["recovery/full_log_replay"]
            snap = means["recovery/snapshot_suffix"]
            if (full == 0 || snap == 0) {
                print "bench snapshot missing recovery results" > "/dev/stderr"
                exit 1
            }
            speedup = full / snap
            printf "{\n  \"bench\": \"recovery\",\n  \"mode\": \"quick\",\n"
            printf "  \"results\": [\n"
            for (i = 1; i <= n; i++) {
                name = names[i]
                printf "    {\"name\": \"%s\", \"mean_ns\": %d, \"iterations\": %d}%s\n", \
                    name, means[name], iter_count[name], (i < n ? "," : "")
            }
            printf "  ],\n"
            printf "  \"snapshot_recovery\": {\n"
            printf "    \"full_log_replay_mean_ns\": %d,\n", full
            printf "    \"snapshot_suffix_mean_ns\": %d,\n", snap
            printf "    \"speedup\": %.3f,\n", speedup
            printf "    \"min_speedup\": %.2f\n", min_speedup
            printf "  }\n}\n"
            if (speedup < min_speedup) {
                printf "perf gate FAILED: snapshot-recovery speedup %.3f < %.2f\n", speedup, min_speedup > "/dev/stderr"
                exit 2
            }
        }
    ' "$tsv" > "$out" || { cat "$out"; exit 1; }

    echo
    echo "=== $out ==="
    cat "$out"
    echo
    echo "Recovery perf gate passed."
}

bench_rpc_snapshot() {
    local out="BENCH_rpc.json"
    local raw tsv
    raw="$(mktemp)"
    tsv="$(mktemp)"
    trap 'rm -f "$raw" "$tsv"' RETURN

    local min_conns="${TROPIC_BENCH_MIN_CONNS:-1000}"
    TROPIC_BENCH_QUICK=1 TROPIC_BENCH_JSON="$raw" TROPIC_BENCH_MIN_CONNS="$min_conns" \
        run cargo bench --bench rpc_roundtrip

    parse_bench_lines < "$raw" > "$tsv"
    # With both drivers pipelining an identical window, the socket's real
    # per-txn cost is small — the gate is tight (default 1.5x) where the
    # old single-txn drivers needed a vacuous 3.0x to absorb
    # scheduling-round alignment noise.
    local max_overhead="${TROPIC_BENCH_MAX_RPC_OVERHEAD:-1.5}"
    # in_process/over_socket run 16 transactions per iteration (an 8-spawn
    # wave plus an 8-destroy wave, 2x the bench WINDOW); batch_socket runs
    # 32 (a 16-spawn batch plus a 16-destroy batch). Report all of them
    # per transaction.
    awk -F'\t' -v max_overhead="$max_overhead" -v min_conns="$min_conns" \
        -v pipeline_txns=16 -v batch_txns=32 '
        { names[++n] = $1; means[$1] = $2; iter_count[$1] = $3 }
        END {
            inproc = means["rpc_roundtrip/in_process"]
            socket = means["rpc_roundtrip/over_socket"]
            batch = means["rpc_roundtrip/batch_socket"]
            conn_ping = means["rpc_roundtrip/concurrent_connections"]
            held = iter_count["rpc_roundtrip/live_connections"]
            if (inproc == 0 || socket == 0 || batch == 0 || conn_ping == 0) {
                print "bench snapshot missing rpc_roundtrip results" > "/dev/stderr"
                exit 1
            }
            overhead = socket / inproc
            inproc_per_txn = inproc / pipeline_txns
            socket_per_txn = socket / pipeline_txns
            batch_per_txn = batch / batch_txns
            printf "{\n  \"bench\": \"rpc_roundtrip\",\n  \"mode\": \"quick\",\n"
            printf "  \"results\": [\n"
            for (i = 1; i <= n; i++) {
                name = names[i]
                printf "    {\"name\": \"%s\", \"mean_ns\": %d, \"iterations\": %d}%s\n", \
                    name, means[name], iter_count[name], (i < n ? "," : "")
            }
            printf "  ],\n"
            printf "  \"concurrent_connections\": {\n"
            printf "    \"held\": %d,\n", held
            printf "    \"min_required\": %d,\n", min_conns
            printf "    \"ping_mean_ns_under_load\": %d\n", conn_ping
            printf "  },\n"
            printf "  \"rpc_overhead\": {\n"
            printf "    \"in_process_mean_ns\": %d,\n", inproc
            printf "    \"over_socket_mean_ns\": %d,\n", socket
            printf "    \"in_process_per_txn_ns\": %d,\n", inproc_per_txn
            printf "    \"over_socket_per_txn_ns\": %d,\n", socket_per_txn
            printf "    \"batch_socket_per_txn_ns\": %d,\n", batch_per_txn
            printf "    \"batch_socket_txn_per_sec\": %.2f,\n", 1e9 / batch_per_txn
            printf "    \"overhead\": %.3f,\n", overhead
            printf "    \"max_overhead\": %.2f\n", max_overhead
            printf "  }\n}\n"
            if (overhead > max_overhead) {
                printf "perf gate FAILED: RPC socket overhead %.3fx > %.2fx\n", overhead, max_overhead > "/dev/stderr"
                exit 2
            }
            if (held < min_conns) {
                printf "perf gate FAILED: reactor held %d live connections < %d\n", held, min_conns > "/dev/stderr"
                exit 2
            }
        }
    ' "$tsv" > "$out" || { cat "$out"; exit 1; }

    echo
    echo "=== $out ==="
    cat "$out"
    echo
    echo "RPC perf gate passed."
}

bench_chaos_snapshot() {
    local out="BENCH_chaos.json"
    local raw tsv
    raw="$(mktemp)"
    tsv="$(mktemp)"
    trap 'rm -f "$raw" "$tsv"' RETURN

    run cargo build --release -p tropic-bench --bin chaos
    TROPIC_BENCH_JSON="$raw" run ./target/release/chaos bench

    parse_bench_lines < "$raw" > "$tsv"
    local max_p99="${TROPIC_BENCH_MAX_CHAOS_P99_MS:-1500}"
    awk -F'\t' -v max_p99="$max_p99" '
        { names[++n] = $1; means[$1] = $2; iter_count[$1] = $3 }
        END {
            split("hi norm batch", lane_arr, " ")
            # acked_lost == 0 is the expected value, so presence is checked
            # by key, not by the zero-means-missing idiom the other gates
            # use.
            if (!("chaos/acked_lost" in means)) {
                print "bench snapshot missing chaos/acked_lost row" > "/dev/stderr"
                exit 1
            }
            lost = means["chaos/acked_lost"]
            for (i = 1; i <= 3; i++) {
                lane = lane_arr[i]
                key = "chaos/p99_" lane
                if (!(key in means) || iter_count[key] == 0) {
                    printf "bench snapshot missing committed traffic for lane %s\n", lane > "/dev/stderr"
                    exit 1
                }
                p99_ms[lane] = means[key] / 1e6
            }
            printf "{\n  \"bench\": \"chaos\",\n  \"mode\": \"quick\",\n"
            printf "  \"results\": [\n"
            for (i = 1; i <= n; i++) {
                name = names[i]
                printf "    {\"name\": \"%s\", \"mean_ns\": %d, \"iterations\": %d}%s\n", \
                    name, means[name], iter_count[name], (i < n ? "," : "")
            }
            printf "  ],\n"
            printf "  \"chaos_gate\": {\n"
            for (i = 1; i <= 3; i++) {
                lane = lane_arr[i]
                printf "    \"p99_%s_ms\": %.1f,\n", lane, p99_ms[lane]
            }
            printf "    \"acked_lost\": %d,\n", lost
            printf "    \"max_p99_ms\": %.1f\n", max_p99
            printf "  }\n}\n"
            for (i = 1; i <= 3; i++) {
                lane = lane_arr[i]
                if (p99_ms[lane] > max_p99) {
                    printf "perf gate FAILED: %s-lane committed p99 %.1f ms > %.1f ms\n", \
                        lane, p99_ms[lane], max_p99 > "/dev/stderr"
                    exit 2
                }
            }
            if (lost != 0) {
                printf "chaos gate FAILED: %d acknowledged transactions lost\n", lost > "/dev/stderr"
                exit 2
            }
        }
    ' "$tsv" > "$out" || { cat "$out"; exit 1; }

    echo
    echo "=== $out ==="
    cat "$out"
    echo
    echo "Chaos perf gate passed."
}

bench_reconcile_snapshot() {
    local out="BENCH_reconcile.json"
    local raw tsv
    raw="$(mktemp)"
    tsv="$(mktemp)"
    trap 'rm -f "$raw" "$tsv"' RETURN

    run cargo build --release -p tropic-bench --bin reconcile
    TROPIC_BENCH_JSON="$raw" run ./target/release/reconcile bench

    parse_bench_lines < "$raw" > "$tsv"
    local max_p99="${TROPIC_BENCH_MAX_RECONCILE_P99_MS:-8000}"
    awk -F'\t' -v max_p99="$max_p99" '
        { names[++n] = $1; means[$1] = $2; iter_count[$1] = $3 }
        END {
            split("1k 16k", size_arr, " ")
            for (i = 1; i <= 2; i++) {
                size = size_arr[i]
                key = "reconcile/mttr_p99_" size
                if (!(key in means) || iter_count[key] == 0) {
                    printf "bench snapshot missing MTTR samples at %s resources\n", size > "/dev/stderr"
                    exit 1
                }
                p99_ms[size] = means[key] / 1e6
            }
            printf "{\n  \"bench\": \"reconcile\",\n  \"mode\": \"quick\",\n"
            printf "  \"results\": [\n"
            for (i = 1; i <= n; i++) {
                name = names[i]
                # %.0f, not %d: nanosecond means at 16k resources exceed
                # 2^31 and %d clamps in 32-bit awks.
                printf "    {\"name\": \"%s\", \"mean_ns\": %.0f, \"iterations\": %d}%s\n", \
                    name, means[name], iter_count[name], (i < n ? "," : "")
            }
            printf "  ],\n"
            printf "  \"reconcile_gate\": {\n"
            for (i = 1; i <= 2; i++) {
                size = size_arr[i]
                printf "    \"mttr_p99_%s_ms\": %.1f,\n", size, p99_ms[size]
            }
            printf "    \"max_p99_ms\": %.1f\n", max_p99
            printf "  }\n}\n"
            for (i = 1; i <= 2; i++) {
                size = size_arr[i]
                if (p99_ms[size] > max_p99) {
                    printf "perf gate FAILED: drift-to-converged p99 %.1f ms > %.1f ms at %s resources\n", \
                        p99_ms[size], max_p99, size > "/dev/stderr"
                    exit 2
                }
            }
        }
    ' "$tsv" > "$out" || { cat "$out"; exit 1; }

    echo
    echo "=== $out ==="
    cat "$out"
    echo
    echo "Reconcile MTTR gate passed."
}

# Extracts `lane<TAB>p50<TAB>p99` committed-latency rows from a chaos report
# (the one-line JSON CHAOS_report.json): for each lane object, the first
# p50_ms/p99_ms inside its committed_latency block.
chaos_report_lanes() {
    awk '
        {
            line = $0
            while (match(line, /"lane":"[a-z]+"/)) {
                lane = substr(line, RSTART + 8, RLENGTH - 9)
                line = substr(line, RSTART + RLENGTH)
                if (!match(line, /"committed_latency":\{[^}]*\}/)) { continue }
                block = substr(line, RSTART, RLENGTH)
                p50 = ""; p99 = ""
                if (match(block, /"p50_ms":[0-9.]+/))
                    p50 = substr(block, RSTART + 9, RLENGTH - 9)
                if (match(block, /"p99_ms":[0-9.]+/))
                    p99 = substr(block, RSTART + 9, RLENGTH - 9)
                if (p50 != "" && p99 != "")
                    printf "%s\t%s\t%s\n", lane, p50, p99
            }
        }
    ' "$1"
}

# Prints the per-lane committed-latency trajectory across the committed
# baseline series (CHAOS_baseline.jsonl, one {"label","lane","p50_ms",
# "p99_ms"} line per point) followed by the current CHAOS_report.json, and
# gates the current p99 against the latest baseline point times
# TROPIC_CHAOS_TREND_MAX_FACTOR (default 3.0 — chaos latencies are noisy;
# the trend gate only catches collapses, the absolute chaos gate in
# --bench-snapshot holds the hard line).
chaos_trend() {
    local baseline="CHAOS_baseline.jsonl"
    local report="${TROPIC_CHAOS_REPORT:-CHAOS_report.json}"
    if [[ ! -f "$baseline" ]]; then
        echo "chaos trend: $baseline missing" >&2
        exit 1
    fi
    if [[ ! -f "$report" ]]; then
        echo "chaos trend: $report missing (run --chaos-smoke first)" >&2
        exit 1
    fi
    local current
    current="$(mktemp)"
    trap 'rm -f "$current"' RETURN
    chaos_report_lanes "$report" > "$current"
    if [[ ! -s "$current" ]]; then
        echo "chaos trend: no lanes parsed from $report" >&2
        exit 1
    fi
    local max_factor="${TROPIC_CHAOS_TREND_MAX_FACTOR:-3.0}"
    awk -F'\t' -v max_factor="$max_factor" '
        NR == FNR {
            # Baseline series: one JSON object per line.
            line = $0
            label = ""; lane = ""; p50 = ""; p99 = ""
            if (match(line, /"label":"[^"]*"/))
                label = substr(line, RSTART + 9, RLENGTH - 10)
            if (match(line, /"lane":"[^"]*"/))
                lane = substr(line, RSTART + 8, RLENGTH - 9)
            if (match(line, /"p50_ms":[0-9.]+/))
                p50 = substr(line, RSTART + 9, RLENGTH - 9)
            if (match(line, /"p99_ms":[0-9.]+/))
                p99 = substr(line, RSTART + 9, RLENGTH - 9)
            if (label == "" || lane == "" || p50 == "" || p99 == "") {
                printf "chaos trend: malformed baseline line %d: %s\n", FNR, line > "/dev/stderr"
                bad = 1
                exit 1
            }
            if (!(lane in seen_lane)) { lanes[++nlanes] = lane; seen_lane[lane] = 1 }
            npoints[lane]++
            series_label[lane, npoints[lane]] = label
            series_p50[lane, npoints[lane]] = p50
            series_p99[lane, npoints[lane]] = p99
            next
        }
        { cur_p50[$1] = $2; cur_p99[$1] = $3; if (!($1 in seen_lane)) { lanes[++nlanes] = $1; seen_lane[$1] = 1 } }
        END {
            if (bad) exit 1
            print "chaos committed-latency trend (ms):"
            failed = 0
            for (i = 1; i <= nlanes; i++) {
                lane = lanes[i]
                printf "  %-5s p50:", lane
                for (j = 1; j <= npoints[lane]; j++)
                    printf " %s(%s)", series_p50[lane, j], series_label[lane, j]
                printf " -> %s(now)\n", (lane in cur_p50 ? cur_p50[lane] : "?")
                printf "        p99:"
                for (j = 1; j <= npoints[lane]; j++)
                    printf " %s(%s)", series_p99[lane, j], series_label[lane, j]
                printf " -> %s(now)\n", (lane in cur_p99 ? cur_p99[lane] : "?")
                if (!(lane in cur_p99)) {
                    if (npoints[lane] > 0) {
                        printf "chaos trend FAILED: lane %s present in baseline but missing from report\n", lane > "/dev/stderr"
                        failed = 1
                    }
                    continue
                }
                if (npoints[lane] == 0) continue
                base = series_p99[lane, npoints[lane]]
                if (base > 0 && cur_p99[lane] > base * max_factor) {
                    printf "chaos trend FAILED: lane %s p99 %.1f ms > %.1f x baseline %.1f ms\n", \
                        lane, cur_p99[lane], max_factor, base > "/dev/stderr"
                    failed = 1
                }
            }
            exit failed
        }
    ' "$baseline" "$current"
    echo
    echo "Chaos trend gate passed."
}

# Short deterministic chaos run: open-loop load over the typed API and the
# RPC socket while the schedule kills the leader and storms the compute
# fleet, then a torn-WAL-tail restart. The binary exits non-zero if any
# acknowledged transaction is lost in either phase.
chaos_smoke() {
    echo
    echo "=== chaos smoke (leader kill + device storm under open-loop load) ==="
    run cargo build --release -p tropic-bench --bin chaos
    run ./target/release/chaos smoke
    echo
    echo "Chaos smoke passed."
}

# Emits every link target of inline markdown links ([text](target)) outside
# fenced code blocks, optional titles stripped.
extract_markdown_links() {
    awk '
        /^[[:space:]]*```/ { in_code = !in_code; next }
        in_code { next }
        {
            line = $0
            while (match(line, /\[[^]]*\]\([^)]+\)/)) {
                link = substr(line, RSTART, RLENGTH)
                rest = substr(line, RSTART + RLENGTH)
                sub(/^\[[^]]*\]\(/, "", link)
                sub(/\)$/, "", link)
                sub(/[[:space:]].*$/, "", link)
                print link
                line = rest
            }
        }
    ' "$1"
}

# True when $1 (a markdown file) contains a heading whose GitHub-style slug
# (lowercased, punctuation dropped, spaces to hyphens) equals $2.
markdown_has_anchor() {
    awk -v anchor="$2" '
        /^[[:space:]]*```/ { in_code = !in_code; next }
        in_code { next }
        /^#+[[:space:]]/ {
            s = $0
            sub(/^#+[[:space:]]+/, "", s)
            gsub(/[`*_]/, "", s)
            s = tolower(s)
            gsub(/[^a-z0-9 -]/, "", s)
            gsub(/ /, "-", s)
            if (s == anchor) { found = 1; exit }
        }
        END { exit !found }
    ' "$1"
}

# Every relative link and #anchor in the operator docs must resolve: files
# must exist, and anchors must match a real heading's slug.
check_markdown_links() {
    echo
    echo "=== markdown link check ==="
    local fail=0 checked=0
    local f target path anchor resolved
    for f in README.md ROADMAP.md CHANGES.md docs/*.md; do
        [[ -f "$f" ]] || continue
        while IFS= read -r target; do
            [[ -z "$target" ]] && continue
            case "$target" in
                http://*|https://*|mailto:*) continue ;;
            esac
            checked=$((checked + 1))
            path="${target%%#*}"
            anchor=""
            [[ "$target" == *#* ]] && anchor="${target#*#}"
            if [[ -z "$path" ]]; then
                resolved="$f"
            else
                resolved="$(dirname "$f")/$path"
            fi
            if [[ ! -e "$resolved" ]]; then
                echo "broken link in $f: ($target) -> no such file: $resolved" >&2
                fail=1
                continue
            fi
            if [[ -n "$anchor" && "$resolved" == *.md ]]; then
                if ! markdown_has_anchor "$resolved" "$anchor"; then
                    echo "broken anchor in $f: ($target) -> no heading '#$anchor' in $resolved" >&2
                    fail=1
                fi
            fi
        done < <(extract_markdown_links "$f")
    done
    if (( fail != 0 )); then
        echo "markdown link check FAILED" >&2
        exit 1
    fi
    echo "markdown link check passed ($checked links)."
}

# Two OS processes, one loopback socket: the server publishes its ephemeral
# port through a file, the client drives a transaction and a subscription
# through it, then requests shutdown over the wire. Both must exit 0.
rpc_smoke() {
    echo
    echo "=== rpc smoke (two processes, one loopback socket) ==="
    run cargo build --example remote_quickstart

    local bin="target/debug/examples/remote_quickstart"
    local addr_file
    addr_file="$(mktemp -u)"
    local server_pid=""
    cleanup_rpc_smoke() {
        if [[ -n "${server_pid:-}" ]] && kill -0 "$server_pid" 2>/dev/null; then
            kill "$server_pid" 2>/dev/null || true
            wait "$server_pid" 2>/dev/null || true
        fi
        [[ -n "${addr_file:-}" ]] && rm -f "$addr_file"
        return 0
    }
    # RETURN fires on the normal path; EXIT fires on the `exit 1` failure
    # paths, which bypass RETURN traps — without it a failed smoke leaks
    # the background server process (a whole platform) and its addr file.
    trap cleanup_rpc_smoke RETURN EXIT

    "$bin" serve "$addr_file" &
    server_pid=$!

    # Wait for the server to publish its bound address (atomic rename).
    local waited=0
    while [[ ! -s "$addr_file" ]]; do
        if ! kill -0 "$server_pid" 2>/dev/null; then
            echo "rpc smoke FAILED: server process died before publishing its address" >&2
            exit 1
        fi
        sleep 0.1
        waited=$((waited + 1))
        if (( waited > 600 )); then
            echo "rpc smoke FAILED: server did not publish an address within 60s" >&2
            exit 1
        fi
    done
    local addr
    addr="$(cat "$addr_file")"
    echo "rpc smoke: server (pid $server_pid) on $addr"

    if ! "$bin" client "$addr"; then
        echo "rpc smoke FAILED: client process exited non-zero" >&2
        exit 1
    fi

    # The client requested shutdown over the wire; the server must exit 0
    # on its own — that *is* the clean-shutdown assertion.
    local server_rc=0
    wait "$server_pid" || server_rc=$?
    server_pid=""
    if (( server_rc != 0 )); then
        echo "rpc smoke FAILED: server exited $server_rc" >&2
        exit 1
    fi
    echo
    echo "RPC smoke passed."
}

doc_gate() {
    RUSTDOCFLAGS="-D warnings" run cargo doc --no-deps --workspace
    echo
    echo "Doc gate passed."
}

# Static-analysis gate: the analyzer first proves itself against the seeded
# fixture trees (every check must fire on the violations tree, none on the
# clean one), then runs the four repo checks. Findings fail the build; the
# rendered report lands in ANALYZE_report.txt either way.
analyze_gate() {
    run cargo build --release -p tropic-analyze
    run ./target/release/tropic-analyze --self-test
    run ./target/release/tropic-analyze --report ANALYZE_report.txt
    echo
    echo "Static-analysis gate passed."
}

if [[ "${1:-}" == "--bench-snapshot" ]]; then
    COMMIT_TSV="$(mktemp)"
    trap 'rm -f "$COMMIT_TSV"' EXIT
    bench_snapshot
    bench_snapshot_format
    bench_recovery_snapshot
    bench_rpc_snapshot
    bench_chaos_snapshot
    bench_reconcile_snapshot
    exit 0
fi

if [[ "${1:-}" == "--doc" ]]; then
    doc_gate
    exit 0
fi

if [[ "${1:-}" == "--rpc-smoke" ]]; then
    rpc_smoke
    exit 0
fi

if [[ "${1:-}" == "--chaos-smoke" ]]; then
    chaos_smoke
    exit 0
fi

if [[ "${1:-}" == "--chaos-trend" ]]; then
    chaos_trend
    exit 0
fi

if [[ "${1:-}" == "--md-links" ]]; then
    check_markdown_links
    exit 0
fi

if [[ "${1:-}" == "--analyze" ]]; then
    analyze_gate
    exit 0
fi

if [[ "${1:-}" == "--test-bench-parser" ]]; then
    test_bench_parser
    exit 0
fi

run cargo build --release
run cargo test -q
run cargo bench --no-run
run cargo build --examples
test_bench_parser
check_markdown_links
analyze_gate
rpc_smoke
doc_gate
run cargo fmt --check

if [[ "${1:-}" != "--no-clippy" ]] && cargo clippy --version >/dev/null 2>&1; then
    run cargo clippy -q --all-targets -- -D warnings
fi

echo
echo "CI green."

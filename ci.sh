#!/usr/bin/env bash
# CI entry point: everything a PR must keep green, in dependency order.
#
# Usage: ./ci.sh [--no-clippy]
#   --no-clippy   skip the clippy pass (e.g. when the component is absent)
set -euo pipefail
cd "$(dirname "$0")"

run() {
    echo
    echo "=== $* ==="
    "$@"
}

run cargo build --release
run cargo test -q
run cargo bench --no-run
run cargo build --examples
run cargo fmt --check

if [[ "${1:-}" != "--no-clippy" ]] && cargo clippy --version >/dev/null 2>&1; then
    run cargo clippy -q --all-targets -- -D warnings
fi

echo
echo "CI green."

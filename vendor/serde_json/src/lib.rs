//! Minimal vendored stand-in for `serde_json`.
//!
//! Implements `to_string` / `to_vec` / `from_str` / `from_slice` over the
//! vendored `serde` crate's value-based data model, with a hand-written JSON
//! writer and recursive-descent parser. Output is compact (no whitespace),
//! maps preserve insertion order, and the externally-tagged enum encoding
//! produced by the vendored derive round-trips exactly.

#![forbid(unsafe_code)]

use serde::content::Content;
use serde::de::DeserializeOwned;
use serde::Serialize;

/// Error produced by JSON (de)serialization.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl serde::ser::Error for Error {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        Error::new(msg.to_string())
    }
}

impl serde::de::Error for Error {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        Error::new(msg.to_string())
    }
}

/// Convenience result alias.
pub type Result<T, E = Error> = std::result::Result<T, E>;

// ---------------------------------------------------------------------
// Serialization.
// ---------------------------------------------------------------------

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_content(out: &mut String, c: &Content) -> Result<()> {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::I64(i) => out.push_str(&i.to_string()),
        Content::U64(u) => out.push_str(&u.to_string()),
        Content::F64(f) => {
            if !f.is_finite() {
                return Err(Error::new("JSON cannot represent NaN or infinity"));
            }
            // `{:?}` is Rust's shortest round-trip float form and is valid
            // JSON for all finite values.
            out.push_str(&format!("{f:?}"));
        }
        Content::Str(s) => write_escaped(out, s),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_content(out, item)?;
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                out.push(':');
                write_content(out, v)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let content = serde::ser::to_content(value).map_err(|e| Error::new(e.to_string()))?;
    let mut out = String::new();
    write_content(&mut out, &content)?;
    Ok(out)
}

/// Serializes `value` to a compact JSON byte vector.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

// ---------------------------------------------------------------------
// Deserialization.
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Parser { bytes, pos: 0 }
    }

    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{kw}`")))
        }
    }

    fn parse_value(&mut self) -> Result<Content> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                self.expect_keyword("null")?;
                Ok(Content::Null)
            }
            Some(b't') => {
                self.expect_keyword("true")?;
                Ok(Content::Bool(true))
            }
            Some(b'f') => {
                self.expect_keyword("false")?;
                Ok(Content::Bool(false))
            }
            Some(b'"') => self.parse_string().map(Content::Str),
            Some(b'[') => {
                self.bump();
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.bump();
                    return Ok(Content::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.bump() {
                        Some(b',') => continue,
                        Some(b']') => return Ok(Content::Seq(items)),
                        _ => return Err(self.err("expected `,` or `]` in array")),
                    }
                }
            }
            Some(b'{') => {
                self.bump();
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.bump();
                    return Ok(Content::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.bump() {
                        Some(b',') => continue,
                        Some(b'}') => return Ok(Content::Map(entries)),
                        _ => return Err(self.err("expected `,` or `}` in object")),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(self.err("unexpected character")),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.skip_ws();
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0c}'),
                    Some(b'u') => {
                        let hi = self.parse_hex4()?;
                        let code = if (0xD800..0xDC00).contains(&hi) {
                            self.expect(b'\\')?;
                            self.expect(b'u')?;
                            let lo = self.parse_hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                        } else {
                            hi
                        };
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| self.err("invalid unicode escape"))?,
                        );
                    }
                    _ => return Err(self.err("invalid escape")),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Re-decode a multi-byte UTF-8 sequence from the source.
                    let start = self.pos - 1;
                    let width = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return Err(self.err("invalid UTF-8")),
                    };
                    let end = start + width;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| self.err("truncated UTF-8"))?;
                    let s = std::str::from_utf8(chunk).map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self
                .bump()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit"))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Content> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.bump();
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.bump();
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.bump();
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.bump();
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.bump();
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.bump();
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.bump();
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Content::I64(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Content::U64(u));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| self.err("invalid number"))
    }
}

/// Parses a value from a JSON byte slice.
pub fn from_slice<T: DeserializeOwned>(bytes: &[u8]) -> Result<T> {
    let mut parser = Parser::new(bytes);
    let content = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.err("trailing characters"));
    }
    serde::de::from_content(content).map_err(|e| Error::new(e.to_string()))
}

/// Parses a value from a JSON string.
pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T> {
    from_slice(s.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&42i64).unwrap(), "42");
        assert_eq!(from_str::<i64>("42").unwrap(), 42);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<f64>("1.5e2").unwrap(), 150.0);
        let s: String = from_str("\"a\\u00e9\\n\"").unwrap();
        assert_eq!(s, "aé\n");
    }

    #[test]
    fn roundtrip_collections() {
        let v = vec![1u64, 2, 3];
        let text = to_string(&v).unwrap();
        assert_eq!(text, "[1,2,3]");
        assert_eq!(from_str::<Vec<u64>>(&text).unwrap(), v);
        let m: std::collections::BTreeMap<String, i64> = from_str("{\"a\": 1, \"b\": -2}").unwrap();
        assert_eq!(m["a"], 1);
        assert_eq!(m["b"], -2);
    }
}

//! Minimal vendored readiness-polling shim (offline build).
//!
//! Wraps the platform's `poll(2)` behind a safe slice-based API so the
//! workspace crates — which all `#![forbid(unsafe_code)]` — can run an
//! event loop over nonblocking sockets without a real dependency.
//! The single `unsafe` FFI call lives here, in the vendored tree.

use std::io;

/// Readable readiness (data available, or EOF pending).
pub const POLLIN: i16 = 0x001;
/// Writable readiness (send buffer has room).
pub const POLLOUT: i16 = 0x004;
/// Error condition (always reported, never requested).
pub const POLLERR: i16 = 0x008;
/// Peer hung up (always reported, never requested).
pub const POLLHUP: i16 = 0x010;
/// The fd was not open (always reported, never requested).
pub const POLLNVAL: i16 = 0x020;

/// One registered file descriptor: mirrors `struct pollfd`.
///
/// Set `events` to the interest mask before calling [`poll`]; the call
/// fills `revents` with what actually became ready.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    /// Raw file descriptor to watch.
    pub fd: i32,
    /// Requested events (`POLLIN` / `POLLOUT` bitmask).
    pub events: i16,
    /// Returned events, filled in by [`poll`].
    pub revents: i16,
}

impl PollFd {
    /// A descriptor watching for `events`.
    pub fn new(fd: i32, events: i16) -> PollFd {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    /// Did the last poll report readable data (or EOF)?
    pub fn readable(&self) -> bool {
        self.revents & (POLLIN | POLLHUP) != 0
    }

    /// Did the last poll report writability?
    pub fn writable(&self) -> bool {
        self.revents & POLLOUT != 0
    }

    /// Did the last poll report an error or invalid-fd condition?
    pub fn errored(&self) -> bool {
        self.revents & (POLLERR | POLLNVAL) != 0
    }
}

#[cfg(unix)]
mod sys {
    use super::PollFd;
    use std::io;
    use std::os::raw::{c_int, c_ulong};

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
    }

    pub fn poll_impl(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
        loop {
            // SAFETY: `PollFd` is `repr(C)` and layout-identical to the
            // platform `struct pollfd`; the pointer/len pair comes from a
            // live mutable slice, and poll(2) writes only within it.
            let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, timeout_ms) };
            if rc >= 0 {
                return Ok(rc as usize);
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }
}

#[cfg(not(unix))]
mod sys {
    use super::PollFd;
    use std::io;

    pub fn poll_impl(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
        // Degenerate fallback for non-unix targets: report nothing ready
        // after the timeout; callers degrade to pure timeout-driven
        // polling. The repo's CI only runs on unix.
        let _ = fds;
        if timeout_ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(timeout_ms as u64));
        }
        Ok(0)
    }
}

/// Block until at least one descriptor in `fds` is ready, the timeout
/// elapses, or a non-EINTR error occurs. Returns the number of entries
/// with non-zero `revents`. A `timeout_ms` of `-1` blocks indefinitely;
/// `0` returns immediately.
///
/// ```
/// use polling::{poll, PollFd, POLLIN};
/// use std::io::Write;
/// use std::os::unix::net::UnixStream;
/// use std::os::unix::io::AsRawFd;
///
/// let (mut a, b) = UnixStream::pair().unwrap();
/// let mut fds = [PollFd::new(b.as_raw_fd(), POLLIN)];
/// assert_eq!(poll(&mut fds, 0).unwrap(), 0); // nothing pending yet
/// a.write_all(b"x").unwrap();
/// assert_eq!(poll(&mut fds, 1000).unwrap(), 1);
/// assert!(fds[0].readable());
/// ```
pub fn poll(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    if fds.is_empty() {
        // poll(2) with zero fds is a portable sleep; avoid passing a
        // dangling pointer from an empty slice.
        if timeout_ms != 0 {
            let ms = if timeout_ms < 0 {
                10
            } else {
                timeout_ms as u64
            };
            std::thread::sleep(std::time::Duration::from_millis(ms));
        }
        return Ok(0);
    }
    sys::poll_impl(fds, timeout_ms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::unix::io::AsRawFd;
    use std::os::unix::net::UnixStream;

    #[test]
    fn readable_after_write_and_hup_after_close() {
        let (mut a, mut b) = UnixStream::pair().unwrap();
        let mut fds = [PollFd::new(b.as_raw_fd(), POLLIN)];
        assert_eq!(poll(&mut fds, 0).unwrap(), 0);

        a.write_all(b"ping").unwrap();
        assert_eq!(poll(&mut fds, 1000).unwrap(), 1);
        assert!(fds[0].readable());
        let mut buf = [0u8; 8];
        assert_eq!(b.read(&mut buf).unwrap(), 4);

        drop(a);
        fds[0].revents = 0;
        assert_eq!(poll(&mut fds, 1000).unwrap(), 1);
        assert!(fds[0].readable()); // EOF surfaces as POLLIN|POLLHUP
    }

    #[test]
    fn writable_socket_reports_pollout() {
        let (a, _b) = UnixStream::pair().unwrap();
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLOUT)];
        assert_eq!(poll(&mut fds, 1000).unwrap(), 1);
        assert!(fds[0].writable());
    }

    #[test]
    fn empty_set_times_out_cleanly() {
        let mut fds: [PollFd; 0] = [];
        assert_eq!(poll(&mut fds, 0).unwrap(), 0);
    }
}

//! Minimal vendored stand-in for `parking_lot`.
//!
//! Offline replacement wrapping `std::sync` primitives behind parking_lot's
//! poison-free API: `lock()`/`read()`/`write()` return guards directly, and
//! [`Condvar::wait_for`] takes the guard by `&mut`. Poisoned locks are
//! recovered transparently (panicking while holding a lock does not poison
//! for other threads, matching parking_lot semantics).

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

/// A mutex whose `lock` never returns a poison error.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
///
/// Holds an `Option` internally so [`Condvar`] can temporarily take the
/// underlying std guard during a wait; it is always `Some` outside a wait.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner
            .as_deref()
            .expect("guard present outside a condvar wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_deref_mut()
            .expect("guard present outside a condvar wait")
    }
}

/// A reader–writer lock whose accessors never return poison errors.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared-read RAII guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write RAII guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader–writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Result of a timed [`Condvar`] wait.
#[derive(Clone, Copy, Debug)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Returns `true` if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable compatible with this crate's [`Mutex`].
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks until notified, releasing the guarded mutex while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard
            .inner
            .take()
            .expect("guard present outside a condvar wait");
        guard.inner = Some(
            self.inner
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner),
        );
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard
            .inner
            .take()
            .expect("guard present outside a condvar wait");
        let (inner, result) = self
            .inner
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn mutex_and_rwlock_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        let rw = RwLock::new(5);
        assert_eq!(*rw.read(), 5);
        *rw.write() = 6;
        assert_eq!(*rw.read(), 6);
    }

    #[test]
    fn condvar_wait_for_times_out_and_wakes() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let mut guard = pair.0.lock();
        let start = Instant::now();
        let res = pair.1.wait_for(&mut guard, Duration::from_millis(20));
        assert!(res.timed_out());
        assert!(start.elapsed() >= Duration::from_millis(10));
        drop(guard);

        let pair2 = pair.clone();
        let h = std::thread::spawn(move || {
            *pair2.0.lock() = true;
            pair2.1.notify_all();
        });
        let mut guard = pair.0.lock();
        while !*guard {
            pair.1.wait_for(&mut guard, Duration::from_millis(50));
        }
        drop(guard);
        h.join().unwrap();
    }
}

//! Minimal vendored stand-in for `serde`.
//!
//! The build environment has no network access to crates.io, so this crate
//! implements a compatible-enough subset of serde's API for this workspace:
//! the [`Serialize`]/[`Deserialize`] traits over a value-based data model
//! ([`content::Content`]), the [`Serializer`]/[`Deserializer`] driver traits,
//! and re-exported derive macros from the vendored `serde_derive`.
//!
//! The data model intentionally mirrors JSON; the vendored `serde_json`
//! crate is the only driver in the workspace.

#![forbid(unsafe_code)]

pub mod content {
    //! The intermediate value model all (de)serialization flows through.

    /// A JSON-shaped intermediate value.
    #[derive(Clone, Debug, PartialEq)]
    pub enum Content {
        /// JSON `null`.
        Null,
        /// A boolean.
        Bool(bool),
        /// A signed integer.
        I64(i64),
        /// An unsigned integer.
        U64(u64),
        /// A float.
        F64(f64),
        /// A string.
        Str(String),
        /// An array.
        Seq(Vec<Content>),
        /// An object; insertion order is preserved.
        Map(Vec<(String, Content)>),
    }

    impl Content {
        /// Coerces any numeric content to `i64` when exactly representable.
        pub fn as_i64(&self) -> Option<i64> {
            match self {
                Content::I64(i) => Some(*i),
                Content::U64(u) => i64::try_from(*u).ok(),
                Content::F64(f) if f.fract() == 0.0 && f.abs() < 9.2e18 => Some(*f as i64),
                _ => None,
            }
        }

        /// Coerces any numeric content to `u64` when exactly representable.
        pub fn as_u64(&self) -> Option<u64> {
            match self {
                Content::U64(u) => Some(*u),
                Content::I64(i) => u64::try_from(*i).ok(),
                Content::F64(f) if f.fract() == 0.0 && *f >= 0.0 && *f < 1.9e19 => Some(*f as u64),
                _ => None,
            }
        }

        /// Coerces any numeric content to `f64`.
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Content::F64(f) => Some(*f),
                Content::I64(i) => Some(*i as f64),
                Content::U64(u) => Some(*u as f64),
                _ => None,
            }
        }
    }

    /// Removes and returns the value under `key` from an object's entry list.
    pub fn take(map: &mut Vec<(String, Content)>, key: &str) -> Option<Content> {
        let idx = map.iter().position(|(k, _)| k == key)?;
        Some(map.remove(idx).1)
    }
}

pub mod ser {
    //! Serialization half of the mini data model.

    use super::content::Content;

    /// Error raised by serializers; mirrors `serde::ser::Error`.
    pub trait Error: Sized + std::error::Error {
        /// Builds an error from a display-able message.
        fn custom<T: std::fmt::Display>(msg: T) -> Self;
    }

    /// A data format that can consume a [`Content`] tree.
    pub trait Serializer: Sized {
        /// Output produced on success.
        type Ok;
        /// Error type raised by the format.
        type Error: Error;

        /// Serializes a complete [`Content`] tree.
        fn serialize_content(self, content: Content) -> Result<Self::Ok, Self::Error>;

        /// Serializes a string slice.
        fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error> {
            self.serialize_content(Content::Str(v.to_owned()))
        }
    }

    /// A value that can describe itself to any [`Serializer`].
    pub trait Serialize {
        /// Serializes `self` into the given serializer.
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
    }

    /// Error type for the in-memory [`ContentSerializer`].
    #[derive(Debug)]
    pub struct SerError(pub String);

    impl std::fmt::Display for SerError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl std::error::Error for SerError {}

    impl Error for SerError {
        fn custom<T: std::fmt::Display>(msg: T) -> Self {
            SerError(msg.to_string())
        }
    }

    /// The identity serializer: captures the [`Content`] tree itself.
    pub struct ContentSerializer;

    impl Serializer for ContentSerializer {
        type Ok = Content;
        type Error = SerError;

        fn serialize_content(self, content: Content) -> Result<Content, SerError> {
            Ok(content)
        }
    }

    /// Serializes any value to the intermediate [`Content`] model.
    pub fn to_content<T: Serialize + ?Sized>(value: &T) -> Result<Content, SerError> {
        value.serialize(ContentSerializer)
    }
}

pub mod de {
    //! Deserialization half of the mini data model.

    use super::content::Content;

    /// Error raised by deserializers; mirrors `serde::de::Error`.
    pub trait Error: Sized + std::error::Error {
        /// Builds an error from a display-able message.
        fn custom<T: std::fmt::Display>(msg: T) -> Self;
    }

    /// A data format that can produce a [`Content`] tree.
    pub trait Deserializer<'de>: Sized {
        /// Error type raised by the format.
        type Error: Error;

        /// Parses the complete input into a [`Content`] tree.
        fn deserialize_content(self) -> Result<Content, Self::Error>;
    }

    /// A value constructible from any [`Deserializer`].
    pub trait Deserialize<'de>: Sized {
        /// Deserializes `Self` from the given deserializer.
        fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
    }

    /// A value deserializable without borrowing from the input.
    pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
    impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

    /// Error type for the in-memory [`ContentDeserializer`].
    #[derive(Debug)]
    pub struct DeError(pub String);

    impl std::fmt::Display for DeError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl std::error::Error for DeError {}

    impl Error for DeError {
        fn custom<T: std::fmt::Display>(msg: T) -> Self {
            DeError(msg.to_string())
        }
    }

    /// The identity deserializer: replays a captured [`Content`] tree.
    pub struct ContentDeserializer(pub Content);

    impl<'de> Deserializer<'de> for ContentDeserializer {
        type Error = DeError;

        fn deserialize_content(self) -> Result<Content, DeError> {
            Ok(self.0)
        }
    }

    /// Deserializes any owned value from the intermediate [`Content`] model.
    pub fn from_content<T: DeserializeOwned>(content: Content) -> Result<T, DeError> {
        T::deserialize(ContentDeserializer(content))
    }
}

// The trait and the derive macro share the `serde::Serialize` /
// `serde::Deserialize` names, as in real serde (separate namespaces).
pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};
pub use serde_derive::{Deserialize, Serialize};

mod impls;

//! `Serialize`/`Deserialize` impls for the std types this workspace uses.

use std::collections::{BTreeMap, HashMap};
use std::time::Duration;

use crate::content::Content;
use crate::de::{Deserialize, DeserializeOwned, Deserializer, Error as DeErrorTrait};
use crate::ser::{to_content, Error as SerErrorTrait, Serialize, Serializer};

macro_rules! signed_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_content(Content::I64(*self as i64))
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let c = deserializer.deserialize_content()?;
                let i = c
                    .as_i64()
                    .ok_or_else(|| D::Error::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(i)
                    .map_err(|_| D::Error::custom(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}

macro_rules! unsigned_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_content(Content::U64(*self as u64))
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let c = deserializer.deserialize_content()?;
                let u = c
                    .as_u64()
                    .ok_or_else(|| D::Error::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(u)
                    .map_err(|_| D::Error::custom(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}

signed_impls!(i8, i16, i32, i64, isize);
unsigned_impls!(u8, u16, u32, u64, usize);

macro_rules! float_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_content(Content::F64(*self as f64))
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let c = deserializer.deserialize_content()?;
                let f = c
                    .as_f64()
                    .ok_or_else(|| D::Error::custom(concat!("expected ", stringify!($t))))?;
                Ok(f as $t)
            }
        }
    )*};
}

float_impls!(f32, f64);

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(Content::Bool(*self))
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Bool(b) => Ok(b),
            _ => Err(D::Error::custom("expected bool")),
        }
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Str(s) => Ok(s),
            _ => Err(D::Error::custom("expected string")),
        }
    }
}

impl Serialize for char {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(Content::Str(self.to_string()))
    }
}

impl<'de> Deserialize<'de> for char {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().expect("non-empty")),
            _ => Err(D::Error::custom("expected single-char string")),
        }
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(Content::Null)
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Null => Ok(()),
            _ => Err(D::Error::custom("expected null")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        T::deserialize(deserializer).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            None => serializer.serialize_content(Content::Null),
            Some(v) => v.serialize(serializer),
        }
    }
}

impl<'de, T: DeserializeOwned> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Null => Ok(None),
            other => crate::de::from_content(other)
                .map(Some)
                .map_err(D::Error::custom),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let items = self
            .iter()
            .map(|v| to_content(v))
            .collect::<Result<Vec<_>, _>>()
            .map_err(S::Error::custom)?;
        serializer.serialize_content(Content::Seq(items))
    }
}

impl<'de, T: DeserializeOwned> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Seq(items) => items
                .into_iter()
                .map(|c| crate::de::from_content(c).map_err(D::Error::custom))
                .collect(),
            _ => Err(D::Error::custom("expected array")),
        }
    }
}

macro_rules! tuple_impls {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let items = vec![$(to_content(&self.$n).map_err(S::Error::custom)?),+];
                serializer.serialize_content(Content::Seq(items))
            }
        }
        impl<'de, $($t: DeserializeOwned),+> Deserialize<'de> for ($($t,)+) {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                match deserializer.deserialize_content()? {
                    Content::Seq(items) => {
                        let mut it = items.into_iter();
                        Ok(($(
                            {
                                let _ = $n;
                                let item = it
                                    .next()
                                    .ok_or_else(|| D::Error::custom("tuple too short"))?;
                                crate::de::from_content::<$t>(item).map_err(D::Error::custom)?
                            },
                        )+))
                    }
                    _ => Err(D::Error::custom("expected array for tuple")),
                }
            }
        }
    )*};
}

tuple_impls! {
    (0 T0)
    (0 T0, 1 T1)
    (0 T0, 1 T1, 2 T2)
    (0 T0, 1 T1, 2 T2, 3 T3)
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut entries = Vec::with_capacity(self.len());
        for (k, v) in self {
            entries.push((k.clone(), to_content(v).map_err(S::Error::custom)?));
        }
        serializer.serialize_content(Content::Map(entries))
    }
}

impl<'de, V: DeserializeOwned> Deserialize<'de> for BTreeMap<String, V> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Map(entries) => entries
                .into_iter()
                .map(|(k, c)| Ok((k, crate::de::from_content(c).map_err(D::Error::custom)?)))
                .collect(),
            _ => Err(D::Error::custom("expected object")),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        let mut entries = Vec::with_capacity(keys.len());
        for k in keys {
            entries.push((k.clone(), to_content(&self[k]).map_err(S::Error::custom)?));
        }
        serializer.serialize_content(Content::Map(entries))
    }
}

impl<'de, V: DeserializeOwned> Deserialize<'de> for HashMap<String, V> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Map(entries) => entries
                .into_iter()
                .map(|(k, c)| Ok((k, crate::de::from_content(c).map_err(D::Error::custom)?)))
                .collect(),
            _ => Err(D::Error::custom("expected object")),
        }
    }
}

impl Serialize for Duration {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(Content::Map(vec![
            ("secs".to_string(), Content::U64(self.as_secs())),
            (
                "nanos".to_string(),
                Content::U64(u64::from(self.subsec_nanos())),
            ),
        ]))
    }
}

impl<'de> Deserialize<'de> for Duration {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Map(mut m) => {
                let secs = crate::content::take(&mut m, "secs")
                    .and_then(|c| c.as_u64())
                    .ok_or_else(|| D::Error::custom("missing `secs` for Duration"))?;
                let nanos = crate::content::take(&mut m, "nanos")
                    .and_then(|c| c.as_u64())
                    .ok_or_else(|| D::Error::custom("missing `nanos` for Duration"))?;
                let nanos = u32::try_from(nanos)
                    .map_err(|_| D::Error::custom("`nanos` out of range for Duration"))?;
                Ok(Duration::new(secs, nanos))
            }
            _ => Err(D::Error::custom("expected object for Duration")),
        }
    }
}

//! Minimal vendored stand-in for `bytes`.
//!
//! Offline replacement for the [`Bytes`] type: a cheaply cloneable,
//! immutable byte buffer backed by `Arc<[u8]>`. Slicing views and the `Buf`
//! traits are not implemented — this workspace only stores, clones, and
//! compares payloads.

#![forbid(unsafe_code)]

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable immutable byte buffer.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
        }
    }

    /// Creates a buffer from a static slice (copied; this stub does not
    /// keep the `'static` reference).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            data: Arc::from(bytes),
        }
    }

    /// Creates a buffer by copying `data`.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::from(data),
        }
    }

    /// Returns the number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the buffer into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::from(v) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Bytes::from(v.into_bytes())
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Self {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data[..] == other.data[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.data[..] == *other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.data[..] == **other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.data[..] == other[..]
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.data.cmp(&other.data)
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.data.hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            match b {
                b'"' => write!(f, "\\\"")?,
                b'\\' => write!(f, "\\\\")?,
                b'\n' => write!(f, "\\n")?,
                b'\r' => write!(f, "\\r")?,
                b'\t' => write!(f, "\\t")?,
                0x20..=0x7e => write!(f, "{}", b as char)?,
                _ => write!(f, "\\x{b:02x}")?,
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_equality() {
        let a = Bytes::from_static(b"hello");
        let b = Bytes::from(b"hello".to_vec());
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
        assert_eq!(a.to_vec(), b"hello");
        assert!(Bytes::new().is_empty());
        assert_eq!(&a[..2], b"he");
    }
}

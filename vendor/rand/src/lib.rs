//! Minimal vendored stand-in for `rand` 0.8.
//!
//! Offline replacement implementing the subset this workspace uses:
//! [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] extension methods `gen`, `gen_range`, and `gen_bool`. The
//! generator is SplitMix64 — statistically fine for simulation and tests,
//! NOT cryptographically secure.

#![forbid(unsafe_code)]

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// RNGs constructible from an integer seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from their full domain by [`Rng::gen`].
pub trait Standard: Sized {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range called with empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range called with empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

int_range_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range called with empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from a type's full domain.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool called with p outside [0, 1]"
        );
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for rand's `StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let x = a.gen_range(0usize..10);
            assert!(x < 10);
            assert_eq!(x, b.gen_range(0usize..10));
        }
        let mut c = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let f: f64 = c.gen();
            assert!((0.0..1.0).contains(&f));
            let j = c.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&j));
        }
        assert!(!StdRng::seed_from_u64(3).gen_bool(0.0));
        assert!(StdRng::seed_from_u64(3).gen_bool(1.0));
    }
}

//! Minimal vendored stand-in for `serde_derive`.
//!
//! The build environment has no network access to crates.io, so this crate
//! re-implements just enough of `#[derive(Serialize)]` / `#[derive(Deserialize)]`
//! for the type shapes this workspace actually uses: non-generic structs with
//! named fields (supporting `#[serde(default)]`) and non-generic enums with
//! unit, tuple, and struct variants, encoded in the externally-tagged JSON
//! representation `serde_json` uses by default.
//!
//! The derive input is parsed directly from the raw `proc_macro` token stream
//! (no `syn`/`quote`), and the generated impls target the value-based data
//! model in the vendored `serde` crate.

#![forbid(unsafe_code)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Field {
    name: String,
    default: bool,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum Shape {
    Struct {
        name: String,
        fields: Vec<Field>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Consumes a leading run of outer attributes, reporting whether any of them
/// was `#[serde(default)]`.
fn skip_attrs(iter: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) -> bool {
    let mut has_default = false;
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.next() {
                    let mut inner = g.stream().into_iter();
                    if let Some(TokenTree::Ident(id)) = inner.next() {
                        if id.to_string() == "serde" {
                            if let Some(TokenTree::Group(args)) = inner.next() {
                                for t in args.stream() {
                                    if let TokenTree::Ident(a) = t {
                                        if a.to_string() == "default" {
                                            has_default = true;
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
            _ => return has_default,
        }
    }
}

/// Consumes an optional `pub` / `pub(...)` visibility prefix.
fn skip_vis(iter: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    if let Some(TokenTree::Ident(id)) = iter.peek() {
        if id.to_string() == "pub" {
            iter.next();
            if let Some(TokenTree::Group(g)) = iter.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    iter.next();
                }
            }
        }
    }
}

/// Consumes type tokens up to (and including) a top-level `,`, tracking
/// angle-bracket depth so commas inside generics don't terminate the field.
fn skip_type(iter: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    let mut angle: i32 = 0;
    let mut prev_dash = false;
    for tt in iter.by_ref() {
        match &tt {
            TokenTree::Punct(p) => {
                let c = p.as_char();
                if c == ',' && angle == 0 {
                    return;
                }
                if c == '<' {
                    angle += 1;
                } else if c == '>' && !prev_dash {
                    angle -= 1;
                }
                prev_dash = c == '-';
            }
            _ => prev_dash = false,
        }
    }
}

/// Splits a parenthesised tuple-variant body into its field count.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut count = 0;
    let mut angle: i32 = 0;
    let mut prev_dash = false;
    let mut saw_any = false;
    for tt in stream {
        saw_any = true;
        if let TokenTree::Punct(p) = &tt {
            let c = p.as_char();
            if c == ',' && angle == 0 {
                count += 1;
            } else if c == '<' {
                angle += 1;
            } else if c == '>' && !prev_dash {
                angle -= 1;
            }
            prev_dash = c == '-';
        } else {
            prev_dash = false;
        }
    }
    if saw_any {
        count + 1
    } else {
        0
    }
}

fn parse_fields(stream: TokenStream) -> Vec<Field> {
    let mut iter = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        let default = skip_attrs(&mut iter);
        skip_vis(&mut iter);
        let name = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => panic!("serde_derive stub: unexpected token in fields: {other}"),
            None => break,
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive stub: expected `:` after field `{name}`, got {other:?}"),
        }
        skip_type(&mut iter);
        fields.push(Field { name, default });
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut iter = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attrs(&mut iter);
        skip_vis(&mut iter);
        let name = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => panic!("serde_derive stub: unexpected token in variants: {other}"),
            None => break,
        };
        let kind = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                iter.next();
                VariantKind::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_fields(g.stream());
                iter.next();
                VariantKind::Struct(fields)
            }
            _ => VariantKind::Unit,
        };
        // Consume the trailing comma, if any (discriminants are unsupported).
        if let Some(TokenTree::Punct(p)) = iter.peek() {
            if p.as_char() == ',' {
                iter.next();
            }
        }
        variants.push(Variant { name, kind });
    }
    variants
}

fn parse_shape(input: TokenStream) -> Shape {
    let mut iter = input.into_iter().peekable();
    loop {
        skip_attrs(&mut iter);
        match iter.next() {
            Some(TokenTree::Ident(id)) => match id.to_string().as_str() {
                "pub" => {
                    if let Some(TokenTree::Group(g)) = iter.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            iter.next();
                        }
                    }
                }
                "struct" => {
                    let name = match iter.next() {
                        Some(TokenTree::Ident(id)) => id.to_string(),
                        other => panic!("serde_derive stub: expected struct name, got {other:?}"),
                    };
                    match iter.next() {
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                            return Shape::Struct {
                                name,
                                fields: parse_fields(g.stream()),
                            };
                        }
                        other => panic!(
                            "serde_derive stub: only non-generic structs with named fields are \
                             supported (struct {name}, got {other:?})"
                        ),
                    }
                }
                "enum" => {
                    let name = match iter.next() {
                        Some(TokenTree::Ident(id)) => id.to_string(),
                        other => panic!("serde_derive stub: expected enum name, got {other:?}"),
                    };
                    match iter.next() {
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                            return Shape::Enum {
                                name,
                                variants: parse_variants(g.stream()),
                            };
                        }
                        other => panic!(
                            "serde_derive stub: only non-generic enums are supported \
                             (enum {name}, got {other:?})"
                        ),
                    }
                }
                _ => {}
            },
            Some(_) => {}
            None => panic!("serde_derive stub: no struct or enum found in derive input"),
        }
    }
}

fn struct_body_to_content(fields: &[Field], access_prefix: &str) -> String {
    let mut out = String::new();
    out.push_str("let mut __m: Vec<(String, ::serde::content::Content)> = Vec::new();\n");
    for f in fields {
        out.push_str(&format!(
            "__m.push((\"{f}\".to_string(), ::serde::ser::to_content(&{prefix}{f})\
             .map_err(::serde::ser::Error::custom)?));\n",
            f = f.name,
            prefix = access_prefix,
        ));
    }
    out.push_str("::serde::content::Content::Map(__m)\n");
    out
}

fn struct_fields_from_map(ty_and_variant: &str, ctor: &str, fields: &[Field]) -> String {
    let mut out = String::new();
    out.push_str(&format!("::core::result::Result::Ok({ctor} {{\n"));
    for f in fields {
        let missing = if f.default {
            "::core::default::Default::default()".to_string()
        } else {
            format!(
                "return ::core::result::Result::Err(::serde::de::Error::custom(\
                 \"missing field `{}` for `{}`\"))",
                f.name, ty_and_variant
            )
        };
        out.push_str(&format!(
            "{f}: match ::serde::content::take(&mut __m, \"{f}\") {{\n\
             ::core::option::Option::Some(__v) => ::serde::de::from_content(__v)\
             .map_err(::serde::de::Error::custom)?,\n\
             ::core::option::Option::None => {missing},\n}},\n",
            f = f.name,
        ));
    }
    out.push_str("})\n");
    out
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    let code = match shape {
        Shape::Struct { name, fields } => {
            let body = struct_body_to_content(&fields, "self.");
            format!(
                "#[allow(unused_mut, clippy::all)]\n\
                 impl ::serde::Serialize for {name} {{\n\
                 fn serialize<S: ::serde::Serializer>(&self, serializer: S) \
                 -> ::core::result::Result<S::Ok, S::Error> {{\n\
                 let __content = {{ {body} }};\n\
                 serializer.serialize_content(__content)\n}}\n}}\n"
            )
        }
        Shape::Enum { name, variants } => {
            let mut arms = String::new();
            for v in &variants {
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{v} => ::serde::content::Content::Str(\"{v}\".to_string()),\n",
                        v = v.name
                    )),
                    VariantKind::Tuple(1) => arms.push_str(&format!(
                        "{name}::{v}(__f0) => ::serde::content::Content::Map(vec![\
                         (\"{v}\".to_string(), ::serde::ser::to_content(__f0)\
                         .map_err(::serde::ser::Error::custom)?)]),\n",
                        v = v.name
                    )),
                    VariantKind::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let items: Vec<String> = binders
                            .iter()
                            .map(|b| {
                                format!(
                                    "::serde::ser::to_content({b})\
                                     .map_err(::serde::ser::Error::custom)?"
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{v}({binders}) => ::serde::content::Content::Map(vec![\
                             (\"{v}\".to_string(), ::serde::content::Content::Seq(\
                             vec![{items}]))]),\n",
                            v = v.name,
                            binders = binders.join(", "),
                            items = items.join(", "),
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let binders: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let items: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(\"{f}\".to_string(), ::serde::ser::to_content({f})\
                                     .map_err(::serde::ser::Error::custom)?)",
                                    f = f.name
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{v} {{ {binders} }} => ::serde::content::Content::Map(vec![\
                             (\"{v}\".to_string(), ::serde::content::Content::Map(\
                             vec![{items}]))]),\n",
                            v = v.name,
                            binders = binders.join(", "),
                            items = items.join(", "),
                        ));
                    }
                }
            }
            format!(
                "#[allow(unused_mut, clippy::all)]\n\
                 impl ::serde::Serialize for {name} {{\n\
                 fn serialize<S: ::serde::Serializer>(&self, serializer: S) \
                 -> ::core::result::Result<S::Ok, S::Error> {{\n\
                 let __content = match self {{\n{arms}}};\n\
                 serializer.serialize_content(__content)\n}}\n}}\n"
            )
        }
    };
    code.parse()
        .expect("serde_derive stub: generated Serialize impl failed to parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    let code = match shape {
        Shape::Struct { name, fields } => {
            let body = struct_fields_from_map(&name, &name, &fields);
            format!(
                "#[allow(unused_mut, unused_variables, clippy::all)]\n\
                 impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
                 fn deserialize<D: ::serde::Deserializer<'de>>(deserializer: D) \
                 -> ::core::result::Result<Self, D::Error> {{\n\
                 let __c = deserializer.deserialize_content()?;\n\
                 let mut __m = match __c {{\n\
                 ::serde::content::Content::Map(__m) => __m,\n\
                 _ => return ::core::result::Result::Err(::serde::de::Error::custom(\
                 \"expected a JSON object for struct `{name}`\")),\n}};\n\
                 {body}\n}}\n}}\n"
            )
        }
        Shape::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in &variants {
                match &v.kind {
                    VariantKind::Unit => unit_arms.push_str(&format!(
                        "\"{v}\" => ::core::result::Result::Ok({name}::{v}),\n",
                        v = v.name
                    )),
                    VariantKind::Tuple(1) => data_arms.push_str(&format!(
                        "\"{v}\" => ::core::result::Result::Ok({name}::{v}(\
                         ::serde::de::from_content(__v)\
                         .map_err(::serde::de::Error::custom)?)),\n",
                        v = v.name
                    )),
                    VariantKind::Tuple(n) => {
                        let mut pops = String::new();
                        for i in (0..*n).rev() {
                            pops.push_str(&format!(
                                "let __f{i} = __seq.pop().expect(\"length checked\");\n"
                            ));
                        }
                        let args: Vec<String> = (0..*n)
                            .map(|i| {
                                format!(
                                    "::serde::de::from_content(__f{i})\
                                     .map_err(::serde::de::Error::custom)?"
                                )
                            })
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{v}\" => {{\n\
                             let mut __seq = match __v {{\n\
                             ::serde::content::Content::Seq(__s) => __s,\n\
                             _ => return ::core::result::Result::Err(::serde::de::Error::custom(\
                             \"expected a JSON array for variant `{name}::{v}`\")),\n}};\n\
                             if __seq.len() != {n} {{\n\
                             return ::core::result::Result::Err(::serde::de::Error::custom(\
                             \"wrong tuple length for variant `{name}::{v}`\"));\n}}\n\
                             {pops}\
                             ::core::result::Result::Ok({name}::{v}({args}))\n}}\n",
                            v = v.name,
                            args = args.join(", "),
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let ctor = format!("{name}::{v}", v = v.name);
                        let body = struct_fields_from_map(&ctor, &ctor, fields);
                        data_arms.push_str(&format!(
                            "\"{v}\" => {{\n\
                             let mut __m = match __v {{\n\
                             ::serde::content::Content::Map(__m) => __m,\n\
                             _ => return ::core::result::Result::Err(::serde::de::Error::custom(\
                             \"expected a JSON object for variant `{name}::{v}`\")),\n}};\n\
                             {body}\n}}\n",
                            v = v.name,
                        ));
                    }
                }
            }
            format!(
                "#[allow(unused_mut, unused_variables, unreachable_patterns, clippy::all)]\n\
                 impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
                 fn deserialize<D: ::serde::Deserializer<'de>>(deserializer: D) \
                 -> ::core::result::Result<Self, D::Error> {{\n\
                 let __c = deserializer.deserialize_content()?;\n\
                 match __c {{\n\
                 ::serde::content::Content::Str(__s) => match __s.as_str() {{\n\
                 {unit_arms}\
                 __other => ::core::result::Result::Err(::serde::de::Error::custom(\
                 &format!(\"unknown unit variant `{{}}` for enum `{name}`\", __other))),\n}},\n\
                 ::serde::content::Content::Map(mut __m) => {{\n\
                 if __m.len() != 1 {{\n\
                 return ::core::result::Result::Err(::serde::de::Error::custom(\
                 \"expected a single-key JSON object for enum `{name}`\"));\n}}\n\
                 let (__k, __v) = __m.remove(0);\n\
                 match __k.as_str() {{\n\
                 {data_arms}\
                 __other => ::core::result::Result::Err(::serde::de::Error::custom(\
                 &format!(\"unknown variant `{{}}` for enum `{name}`\", __other))),\n}}\n}}\n\
                 _ => ::core::result::Result::Err(::serde::de::Error::custom(\
                 \"invalid JSON representation for enum `{name}`\")),\n}}\n}}\n}}\n"
            )
        }
    };
    code.parse()
        .expect("serde_derive stub: generated Deserialize impl failed to parse")
}

//! Minimal vendored stand-in for `crossbeam` (the `channel` module only).
//!
//! Offline replacement implementing an unbounded MPMC channel over a
//! `Mutex<VecDeque>` + `Condvar`, with crossbeam's disconnect semantics:
//! receives fail once all senders are dropped and the queue is drained, and
//! sends fail once all receivers are dropped.

#![forbid(unsafe_code)]

pub mod channel {
    //! Multi-producer multi-consumer FIFO channels.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex, PoisonError};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        available: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// disconnected.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// All senders are gone and the queue is drained.
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => f.write_str("receiving on an empty channel"),
                TryRecvError::Disconnected => {
                    f.write_str("receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for TryRecvError {}

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed with the channel still empty.
        Timeout,
        /// All senders are gone and the queue is drained.
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
                RecvTimeoutError::Disconnected => {
                    f.write_str("receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues a message; fails only if every receiver was dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::SeqCst) == 0 {
                return Err(SendError(msg));
            }
            self.shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push_back(msg);
            self.shared.available.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::SeqCst);
            Sender {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender: wake blocked receivers so they observe the
                // disconnect.
                self.shared.available.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> Receiver<T> {
        fn disconnected(&self) -> bool {
            self.shared.senders.load(Ordering::SeqCst) == 0
        }

        /// Dequeues a message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            match q.pop_front() {
                Some(msg) => Ok(msg),
                None if self.disconnected() => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Blocks until a message arrives or the channel disconnects.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(msg) = q.pop_front() {
                    return Ok(msg);
                }
                if self.disconnected() {
                    return Err(RecvError);
                }
                q = self
                    .shared
                    .available
                    .wait(q)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Blocks until a message arrives, the channel disconnects, or
        /// `timeout` elapses.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut q = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(msg) = q.pop_front() {
                    return Ok(msg);
                }
                if self.disconnected() {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self
                    .shared
                    .available
                    .wait_timeout(q, deadline - now)
                    .unwrap_or_else(PoisonError::into_inner);
                q = guard;
            }
        }

        /// Returns an iterator that blocks on [`Receiver::recv`] until the
        /// channel disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::SeqCst);
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// Blocking iterator over received messages.
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_fifo_and_disconnect() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.try_recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn recv_timeout_times_out() {
            let (tx, rx) = unbounded::<u8>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            tx.send(9).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(9));
        }

        #[test]
        fn cross_thread_delivery() {
            let (tx, rx) = unbounded();
            let h = std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let mut got = Vec::new();
            while got.len() < 100 {
                got.push(rx.recv().unwrap());
            }
            h.join().unwrap();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        }
    }
}

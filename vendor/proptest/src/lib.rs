//! Minimal vendored stand-in for `proptest`.
//!
//! Offline replacement implementing the subset this workspace's property
//! tests use: the [`strategy::Strategy`] trait with `prop_map`, strategies
//! for integer ranges, tuples, `Just`, `prop::collection::vec`, simple
//! character-class regex string strategies (`"[a-z]{1,12}"`), the
//! [`prop_oneof!`] union, and the [`proptest!`] / `prop_assert*` macros.
//!
//! Unlike real proptest there is **no shrinking**: a failing case panics
//! with the generated inputs' debug representation. Generation is
//! deterministic per test (fixed base seed + case index).

#![forbid(unsafe_code)]

// Re-exported for the `proptest!` macro expansion, which runs in crates
// that do not themselves depend on `rand`.
#[doc(hidden)]
pub use rand;

pub mod strategy {
    //! Value-generation strategies.

    use rand::rngs::StdRng;

    /// The RNG handed to strategies.
    pub type TestRng = StdRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Boxes the strategy for heterogeneous unions.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A boxed, type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    use rand::Rng;
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    use rand::Rng;
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            use rand::Rng;
            rng.gen_range(self.clone())
        }
    }

    macro_rules! tuple_strategies {
        ($(($($n:tt $s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
        (0 A, 1 B, 2 C, 3 D, 4 E)
    }

    /// Uniform choice between boxed alternatives (used by `prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union over one or more alternatives.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            use rand::Rng;
            let idx = rng.gen_range(0..self.options.len());
            self.options[idx].generate(rng)
        }
    }

    /// String strategy from a character-class regex (`"[a-z0-9]{1,12}"`).
    ///
    /// Supported syntax: literal characters, `[...]` classes with ranges
    /// (a trailing or leading `-` is literal), and `{n}` / `{m,n}`
    /// quantifiers on the preceding atom. Anything else panics.
    impl Strategy for &'static str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            generate_from_pattern(self, rng)
        }
    }

    fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        use rand::Rng;
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            // Parse one atom: a character class or a literal.
            let alphabet: Vec<char> = if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("proptest stub: unclosed `[` in {pattern:?}"))
                    + i;
                let class = &chars[i + 1..close];
                i = close + 1;
                expand_class(class, pattern)
            } else {
                let c = chars[i];
                assert!(
                    !"(){}|*+?.\\^$".contains(c),
                    "proptest stub: unsupported regex syntax {c:?} in {pattern:?}"
                );
                i += 1;
                vec![c]
            };
            // Parse an optional {n} / {m,n} quantifier.
            let (lo, hi) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("proptest stub: unclosed `{{` in {pattern:?}"))
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse::<usize>().expect("quantifier lower bound"),
                        n.trim().parse::<usize>().expect("quantifier upper bound"),
                    ),
                    None => {
                        let n = body.trim().parse::<usize>().expect("quantifier count");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            let count = if lo == hi { lo } else { rng.gen_range(lo..=hi) };
            for _ in 0..count {
                let idx = rng.gen_range(0..alphabet.len());
                out.push(alphabet[idx]);
            }
        }
        out
    }

    fn expand_class(class: &[char], pattern: &str) -> Vec<char> {
        assert!(
            !class.is_empty(),
            "proptest stub: empty class in {pattern:?}"
        );
        assert!(
            class[0] != '^',
            "proptest stub: negated classes unsupported in {pattern:?}"
        );
        let mut out = Vec::new();
        let mut i = 0;
        while i < class.len() {
            if i + 2 < class.len() && class[i + 1] == '-' {
                let (lo, hi) = (class[i], class[i + 2]);
                assert!(lo <= hi, "proptest stub: bad range in {pattern:?}");
                for c in lo..=hi {
                    out.push(c);
                }
                i += 3;
            } else {
                out.push(class[i]);
                i += 1;
            }
        }
        out
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::{Strategy, TestRng};

    /// Strategy for `Vec`s of values from `element` with a length sampled
    /// from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// Builds a [`VecStrategy`].
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            use rand::Rng;
            let len = if self.size.start >= self.size.end {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use super::strategy::{Strategy, TestRng};

    /// Strategy for `Option`s of values from `inner`.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Builds an [`OptionStrategy`] producing `None` about a quarter of
    /// the time (proptest's default weighting) and `Some` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            use rand::Rng;
            if rng.gen_range(0..4usize) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod test_runner {
    //! Test-case driving machinery used by the [`proptest!`](crate::proptest) macro.

    /// Per-test configuration.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of cases to generate and run.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a generated case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// The case was rejected by `prop_assume!`; it doesn't count.
        Reject(String),
        /// An assertion failed; the test fails.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds a failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Builds a rejection.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Result type for one generated case.
    pub type TestCaseResult = Result<(), TestCaseError>;
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude::*`.

    pub use crate::collection;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

pub mod prop {
    //! The `prop::` namespace (`prop::collection::vec`, `prop::option::of`).

    pub use crate::collection;
    pub use crate::option;
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`): {}",
            stringify!($left),
            stringify!($right),
            left,
            right,
            format!($($fmt)*)
        );
    }};
}

/// Discards the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Uniform choice among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Declares property tests.
///
/// Each function body runs once per generated case; `prop_assert*` failures
/// panic with the offending inputs, `prop_assume!` rejections are retried
/// (up to 20× the case count before giving up).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run $config; $($rest)*);
    };
    (@run $config:expr; $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strategy:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                // Deterministic per-test seed derived from the test name.
                let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
                for b in stringify!($name).bytes() {
                    seed ^= u64::from(b);
                    seed = seed.wrapping_mul(0x1000_0000_01b3);
                }
                let mut passed: u32 = 0;
                let mut attempts: u64 = 0;
                let max_attempts = u64::from(config.cases) * 20;
                while passed < config.cases {
                    attempts += 1;
                    if attempts > max_attempts {
                        panic!(
                            "proptest stub: too many rejected cases in `{}` ({} attempts)",
                            stringify!($name),
                            attempts - 1
                        );
                    }
                    let mut rng =
                        <$crate::strategy::TestRng as $crate::rand::SeedableRng>::seed_from_u64(
                            seed ^ attempts,
                        );
                    $(
                        let generated = $crate::strategy::Strategy::generate(&$strategy, &mut rng);
                        let input_repr = format!("{:?}", generated);
                        let $arg = generated;
                    )*
                    let result: $crate::test_runner::TestCaseResult = (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    match result {
                        ::core::result::Result::Ok(()) => passed += 1,
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => continue,
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(msg),
                        ) => {
                            let _ = &input_repr;
                            panic!(
                                "proptest stub: case {} of `{}` failed: {}\nlast input: {}",
                                passed + 1,
                                stringify!($name),
                                msg,
                                input_repr
                            );
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run $crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

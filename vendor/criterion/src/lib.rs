//! Minimal vendored stand-in for `criterion`.
//!
//! Offline replacement implementing the subset this workspace's benches
//! use: [`Criterion::benchmark_group`], group-level `sample_size` /
//! `measurement_time`, `bench_function` with a [`Bencher`] whose `iter`
//! measures wall-clock time, and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Reports mean per-iteration time to stdout;
//! there is no statistical analysis, HTML report, or CLI filtering beyond
//! ignoring unknown flags (so `cargo bench -- --test` style invocations
//! still run).
//!
//! Two environment variables support CI perf snapshots (`ci.sh
//! --bench-snapshot`):
//!
//! * `TROPIC_BENCH_QUICK` — non-empty and not `0`: clamp every benchmark to
//!   30 samples inside a 2-second budget (the budget is the effective cap
//!   on heavy benches; the raised sample count keeps the CI perf-gate
//!   means stable).
//! * `TROPIC_BENCH_JSON` — path to a file that receives one JSON line per
//!   benchmark: `{"name":…,"mean_ns":…,"iterations":…}`.

#![forbid(unsafe_code)]

use std::io::Write;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
    default_measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 50,
            default_measurement_time: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        let sample_size = self.default_sample_size;
        let measurement_time = self.default_measurement_time;
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size,
            measurement_time,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let sample_size = self.default_sample_size;
        let measurement_time = self.default_measurement_time;
        run_benchmark(&name.into(), sample_size, measurement_time, &mut f);
        self
    }
}

/// A named collection of benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Sets the target total measurement time per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, name.into());
        run_benchmark(&full, self.sample_size, self.measurement_time, &mut f);
        self
    }

    /// Finishes the group (display symmetry with real criterion).
    pub fn finish(&mut self) {}
}

fn quick_mode() -> bool {
    std::env::var_os("TROPIC_BENCH_QUICK").is_some_and(|v| !v.is_empty() && v != "0")
}

fn record_json_line(name: &str, mean_ns: u128, iterations: u64) {
    let Some(path) = std::env::var_os("TROPIC_BENCH_JSON") else {
        return;
    };
    let line = format!("{{\"name\":\"{name}\",\"mean_ns\":{mean_ns},\"iterations\":{iterations}}}");
    if let Ok(mut file) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    {
        let _ = writeln!(file, "{line}");
    }
}

fn run_benchmark(
    name: &str,
    sample_size: usize,
    measurement_time: Duration,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let (sample_size, measurement_time) = if quick_mode() {
        // 30 samples inside a 2-second budget: enough iterations that the
        // CI perf gates compare stable means (a 10-sample mean of a
        // ~20 ms platform round trip flickers several percent run-to-run,
        // which is the same order as the gate margins), while micro-benches
        // stay far under the budget. The budget is the real cap on heavy
        // benches.
        (30, measurement_time.min(Duration::from_secs(2)))
    } else {
        (sample_size, measurement_time)
    };
    let mut bencher = Bencher {
        total: Duration::ZERO,
        iterations: 0,
        budget: measurement_time,
        samples: sample_size.max(1),
    };
    f(&mut bencher);
    if bencher.iterations == 0 {
        println!("  {name}: no iterations recorded");
        return;
    }
    let mean = bencher.total
        / u32::try_from(bencher.iterations.min(u64::from(u32::MAX))).unwrap_or(u32::MAX);
    println!(
        "  {name}: mean {mean:?} over {} iterations",
        bencher.iterations
    );
    record_json_line(name, mean.as_nanos(), bencher.iterations);
}

/// Timer handle passed to each benchmark closure.
pub struct Bencher {
    total: Duration,
    iterations: u64,
    budget: Duration,
    samples: usize,
}

impl Bencher {
    /// Times repeated executions of `routine`.
    ///
    /// Runs a couple of warm-up iterations, then measures batches until the
    /// sample count is reached or the time budget is spent.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..2 {
            black_box(routine());
        }
        let started = Instant::now();
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(routine());
            self.total += t0.elapsed();
            self.iterations += 1;
            if started.elapsed() >= self.budget {
                break;
            }
        }
    }
}

/// Declares a group-runner function invoking each benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a bench target built with `harness = false`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Accept and ignore harness flags such as `--bench`/`--test`.
            $($group();)+
        }
    };
}
